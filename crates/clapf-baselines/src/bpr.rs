//! BPR — Bayesian Personalized Ranking (Rendle et al., UAI 2009).
//!
//! The seminal pairwise baseline: maximize `Σ ln σ(f_ui − f_uj)` over
//! observed/unobserved pairs by SGD (Eqs. 1–4 of the paper). CLAPF with
//! `λ = 0` coincides with this model; keeping a standalone implementation
//! both provides the baseline and cross-checks the reduction.

use crate::observe::{build_epoch_stats, epoch_control, epoch_len, StepTally};
use crate::resume::{fit_resumable_loop, ResumeReport};
use clapf_core::checkpoint::{self, CheckpointConfig, CheckpointError};
use clapf_core::objective::{ln_sigmoid, sigmoid};
use clapf_core::{FactorRecommender, ParallelConfig};
use clapf_data::Interactions;
use clapf_mf::{Init, MfModel, SgdConfig, SharedMfModel};
use clapf_sampling::{sample_observed_pair, sample_unobserved_uniform};
use clapf_telemetry::{FitMeta, FitSummary, NoopObserver, TrainObserver};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// BPR hyper-parameters.
#[derive(Copy, Clone, Debug)]
pub struct BprConfig {
    /// Latent dimension (20 in the paper).
    pub dim: usize,
    /// Learning rate and regularization.
    pub sgd: SgdConfig,
    /// Total SGD steps; `0` = automatic (`100·|P|`, capped at 8 M).
    pub iterations: usize,
    /// Parameter initialization.
    pub init: Init,
    /// Multi-threaded training settings for [`Bpr::fit_parallel`].
    pub parallel: ParallelConfig,
}

impl Default for BprConfig {
    fn default() -> Self {
        BprConfig {
            dim: 20,
            sgd: SgdConfig::default(),
            iterations: 0,
            init: Init::default(),
            parallel: ParallelConfig::default(),
        }
    }
}

/// The BPR trainer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Bpr {
    /// Hyper-parameters.
    pub config: BprConfig,
}

impl Bpr {
    /// Fits by SGD with uniform negative sampling.
    pub fn fit<R: Rng>(&self, data: &Interactions, rng: &mut R) -> FactorRecommender {
        self.fit_observed(data, rng, &mut NoopObserver)
    }

    /// [`fit`](Bpr::fit) under a [`TrainObserver`]. BPR has no sampler
    /// refresh, so the loop is chunked into synthetic epochs (one data pass
    /// each, at most 100 per run) purely for observation; the step order and
    /// RNG stream are exactly those of the flat loop, so an observed fit is
    /// bit-identical to an unobserved one. A divergence or
    /// [`Control::Abort`](clapf_telemetry::Control::Abort) stops training
    /// at the epoch edge.
    pub fn fit_observed<R: Rng>(
        &self,
        data: &Interactions,
        rng: &mut R,
        observer: &mut dyn TrainObserver,
    ) -> FactorRecommender {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        let start = Instant::now();
        let model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, rng);
        let shared = SharedMfModel::new(model);
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let params = BprParams::new(&cfg.sgd);
        let observing = observer.enabled();

        observer.on_fit_start(&FitMeta {
            model: "BPR".to_string(),
            sampler: "UniformNegative".to_string(),
            dim: cfg.dim,
            iterations,
            threads: 1,
            n_users: data.n_users(),
            n_items: data.n_items(),
            n_pairs: data.n_pairs(),
        });

        let epoch_steps = epoch_len(iterations, data.n_pairs());
        let n_epochs = iterations.div_ceil(epoch_steps);
        let mut u_old = vec![0.0f32; cfg.dim];
        let mut grad_u = vec![0.0f32; cfg.dim];
        let mut tally = StepTally::new(observing);
        let mut steps_done = 0usize;
        let mut aborted_at = None;
        let mut epoch_clock = Instant::now();

        for epoch in 0..n_epochs {
            let epoch_start = epoch * epoch_steps;
            let epoch_end = ((epoch + 1) * epoch_steps).min(iterations);
            for _ in epoch_start..epoch_end {
                bpr_step(&shared, data, rng, &params, &mut u_old, &mut grad_u, &mut tally);
            }
            steps_done = epoch_end;

            let now = Instant::now();
            let stats = build_epoch_stats(
                epoch,
                epoch_end - epoch_start,
                steps_done,
                now - epoch_clock,
                tally.take(),
                observing.then(|| shared.view()),
            );
            epoch_clock = now;
            if epoch_control(observer, &stats, steps_done) {
                if steps_done < iterations {
                    aborted_at = Some(steps_done);
                }
                break;
            }
        }

        let model = shared.into_inner();
        observer.on_fit_end(&FitSummary {
            steps: steps_done,
            elapsed: start.elapsed(),
            diverged: model.has_non_finite(),
            aborted_at,
        });
        FactorRecommender {
            model,
            label: "BPR".into(),
        }
    }

    /// Trains **crash-safely** with the same checkpoint machinery as
    /// [`Clapf::fit_resumable`](clapf_core::Clapf::fit_resumable):
    /// checkpoints to `ckpt.dir` at synthetic-epoch edges, resumes from the
    /// newest valid checkpoint when `ckpt.resume` is set, and recovers from
    /// divergence by rolling back with a shrunk learning rate (at most
    /// `ckpt.max_retries` times).
    ///
    /// BPR's negative sampler is stateless, so a checkpoint (model + RNG
    /// state + epoch) captures the whole run: an uninterrupted resumable fit
    /// is bit-identical to [`fit`](Bpr::fit) with
    /// `SmallRng::seed_from_u64(base_seed)`, and an interrupted-and-resumed
    /// fit is bit-identical to the uninterrupted one (both pinned by tests).
    pub fn fit_resumable(
        &self,
        data: &Interactions,
        base_seed: u64,
        ckpt: &CheckpointConfig,
        observer: &mut dyn TrainObserver,
    ) -> Result<(FactorRecommender, ResumeReport), CheckpointError> {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let epoch_steps = epoch_len(iterations, data.n_pairs());
        let fp = checkpoint::fingerprint(&[
            ("model", "BPR".to_string()),
            ("dim", cfg.dim.to_string()),
            ("sgd", format!("{:?}", cfg.sgd)),
            ("init", format!("{:?}", cfg.init)),
            ("iterations", iterations.to_string()),
            ("epoch", epoch_steps.to_string()),
            ("sampler", "UniformNegative".to_string()),
            ("seed", base_seed.to_string()),
            (
                "data",
                format!("{}x{}:{}", data.n_users(), data.n_items(), data.n_pairs()),
            ),
        ]);
        let meta = FitMeta {
            model: "BPR".to_string(),
            sampler: "UniformNegative".to_string(),
            dim: cfg.dim,
            iterations,
            threads: 1,
            n_users: data.n_users(),
            n_items: data.n_items(),
            n_pairs: data.n_pairs(),
        };
        let mut u_old = vec![0.0f32; cfg.dim];
        let mut grad_u = vec![0.0f32; cfg.dim];
        let (model, report) = fit_resumable_loop(
            data,
            cfg.dim,
            cfg.init,
            iterations,
            meta,
            fp,
            base_seed,
            ckpt,
            observer,
            |scale| BprParams::scaled(&cfg.sgd, scale),
            |shared, rng, p, tally| bpr_step(shared, data, rng, p, &mut u_old, &mut grad_u, tally),
        )?;
        Ok((
            FactorRecommender {
                model,
                label: "BPR".into(),
            },
            report,
        ))
    }

    /// Fits with Hogwild-style lock-free parallel SGD, sharing the model
    /// across `config.parallel.threads` workers (0 = all cores). BPR's
    /// negative sampler is stateless, so workers need no epoch barrier —
    /// they just drain a shared step counter in chunks. `threads = 1` is
    /// bit-identical to [`fit`](Bpr::fit) with
    /// `SmallRng::seed_from_u64(base_seed)`.
    pub fn fit_parallel(&self, data: &Interactions, base_seed: u64) -> FactorRecommender {
        self.fit_parallel_observed(data, base_seed, &mut NoopObserver)
    }

    /// [`fit_parallel`](Bpr::fit_parallel) under a [`TrainObserver`].
    ///
    /// Unlike the CLAPF trainer, BPR's workers synchronize on **no** epoch
    /// barriers (its sampler is stateless), so there is no quiescent point
    /// at which per-epoch model scans would be consistent; the observer
    /// receives `on_fit_start` and `on_fit_end` (with a post-join divergence
    /// check) but no `on_epoch` callbacks. Use [`fit_observed`](Bpr::fit_observed)
    /// when per-epoch statistics matter.
    pub fn fit_parallel_observed(
        &self,
        data: &Interactions,
        base_seed: u64,
        observer: &mut dyn TrainObserver,
    ) -> FactorRecommender {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        let start = Instant::now();
        let threads = cfg.parallel.resolve_threads();
        let chunk = cfg.parallel.resolve_chunk();

        let mut init_rng = SmallRng::seed_from_u64(base_seed);
        let model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, &mut init_rng);
        let shared = SharedMfModel::new(model);
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let params = BprParams::new(&cfg.sgd);

        observer.on_fit_start(&FitMeta {
            model: "BPR".to_string(),
            sampler: "UniformNegative".to_string(),
            dim: cfg.dim,
            iterations,
            threads,
            n_users: data.n_users(),
            n_items: data.n_items(),
            n_pairs: data.n_pairs(),
        });

        // Worker 0 continues the init stream (serial-equivalent); the rest
        // get independent streams.
        let mut rngs = Vec::with_capacity(threads);
        rngs.push(init_rng);
        for w in 1..threads {
            rngs.push(SmallRng::seed_from_u64(base_seed.wrapping_add(w as u64)));
        }
        let counter = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for mut wrng in rngs {
                let shared = &shared;
                let counter = &counter;
                let params = &params;
                scope.spawn(move || {
                    let mut u_old = vec![0.0f32; cfg.dim];
                    let mut grad_u = vec![0.0f32; cfg.dim];
                    // No barriers ⇒ no consistent epoch edges; the workers
                    // keep their tallies disabled and the hot loop stays
                    // untouched by telemetry.
                    let mut tally = StepTally::new(false);
                    loop {
                        let s = counter.fetch_add(chunk, Ordering::Relaxed);
                        if s >= iterations {
                            break;
                        }
                        for _ in s..(s + chunk).min(iterations) {
                            bpr_step(
                                shared, data, &mut wrng, params, &mut u_old, &mut grad_u,
                                &mut tally,
                            );
                        }
                    }
                });
            }
        });

        let model = shared.into_inner();
        observer.on_fit_end(&FitSummary {
            steps: iterations,
            elapsed: start.elapsed(),
            diverged: model.has_non_finite(),
            aborted_at: None,
        });
        FactorRecommender {
            model,
            label: "BPR".into(),
        }
    }
}

pub(crate) fn resolve_iterations(iterations: usize, n_pairs: usize) -> usize {
    if iterations > 0 {
        iterations
    } else {
        (100 * n_pairs).clamp(1, 8_000_000)
    }
}

struct BprParams {
    lr: f32,
    decay_u: f32,
    decay_v: f32,
    decay_b: f32,
}

impl BprParams {
    fn new(sgd: &SgdConfig) -> Self {
        Self::scaled(sgd, 1.0)
    }

    /// `lr_scale` multiplies the learning rate (divergence-recovery
    /// backoff); `1.0` is bitwise-exact, so the resumable path at scale 1
    /// steps identically to [`new`](BprParams::new).
    fn scaled(sgd: &SgdConfig, lr_scale: f32) -> Self {
        let lr = sgd.learning_rate * lr_scale;
        BprParams {
            lr,
            decay_u: lr * sgd.reg_user,
            decay_v: lr * sgd.reg_item,
            decay_b: lr * sgd.reg_bias,
        }
    }
}

/// One BPR SGD step (Eqs. 1–4), shared by the serial and parallel paths.
#[inline]
#[allow(clippy::too_many_arguments)]
fn bpr_step(
    shared: &SharedMfModel,
    data: &Interactions,
    rng: &mut dyn RngCore,
    p: &BprParams,
    u_old: &mut [f32],
    grad_u: &mut [f32],
    tally: &mut StepTally,
) {
    let model = shared.view();
    let (u, i) = sample_observed_pair(data, rng);
    let Some(j) = sample_unobserved_uniform(data, u, rng) else {
        if tally.enabled {
            tally.skipped += 1;
        }
        return;
    };
    let x = model.score(u, i) - model.score(u, j);
    let g = sigmoid(-x);

    if tally.enabled {
        tally.sampled += 1;
        tally.loss += -ln_sigmoid(x as f64);
        tally.gsum += g as f64;
    }

    model.copy_user_into(u, u_old);
    for ((slot, &vi), &vj) in grad_u.iter_mut().zip(model.item(i)).zip(model.item(j)) {
        *slot = vi - vj;
    }
    shared.sgd_user(u, p.lr * g, grad_u, p.decay_u);
    shared.sgd_item(i, p.lr * g, u_old, p.decay_v);
    shared.sgd_bias(i, p.lr, g, p.decay_b);
    shared.sgd_item(j, -p.lr * g, u_old, p.decay_v);
    shared.sgd_bias(j, p.lr, -g, p.decay_b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_core::Recommender;
    use clapf_data::split::{split, SplitStrategy};
    use clapf_data::synthetic::{generate, WorldConfig};
    use clapf_data::{ItemId, UserId};
    use clapf_metrics::{evaluate_serial, EvalConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quick() -> Bpr {
        Bpr {
            config: BprConfig {
                dim: 8,
                iterations: 12_000,
                ..BprConfig::default()
            },
        }
    }

    #[test]
    fn learns_better_than_chance() {
        let world = WorldConfig {
            n_users: 50,
            n_items: 80,
            target_pairs: 900,
            affinity_weight: 4.0,
            ..WorldConfig::default()
        };
        let data = generate(&world, &mut SmallRng::seed_from_u64(1)).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let s = split(&data, SplitStrategy::PerUser, 0.5, &mut rng).unwrap();
        let model = quick().fit(&s.train, &mut rng);
        let scorer = |u: UserId, out: &mut Vec<f32>| model.scores_into(u, out);
        let report = evaluate_serial(&scorer, &s.train, &s.test, &EvalConfig::at_5());
        assert!(report.auc > 0.62, "AUC = {}", report.auc);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(3)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 4,
                iterations: 2_000,
                ..BprConfig::default()
            },
        };
        let a = trainer.fit(&data, &mut SmallRng::seed_from_u64(7));
        let b = trainer.fit(&data, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a.score(UserId(0), ItemId(0)), b.score(UserId(0), ItemId(0)));
    }

    #[test]
    fn threads_1_is_bitwise_serial() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(20)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 4_000,
                ..BprConfig::default()
            },
        };
        let serial = trainer.fit(&data, &mut SmallRng::seed_from_u64(33));
        let parallel = trainer.fit_parallel(&data, 33);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(serial.score(u, i).to_bits(), parallel.score(u, i).to_bits());
            }
        }
    }

    #[test]
    fn parallel_training_stays_finite() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(21)).unwrap();
        let model = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 8_000,
                parallel: ParallelConfig {
                    threads: 4,
                    chunk_size: 64,
                },
                ..BprConfig::default()
            },
        }
        .fit_parallel(&data, 9);
        assert!(!model.model.has_non_finite());
    }

    /// Records everything the trainer reports.
    #[derive(Default)]
    struct Recording {
        meta: Option<clapf_telemetry::FitMeta>,
        epochs: Vec<clapf_telemetry::EpochStats>,
        summary: Option<clapf_telemetry::FitSummary>,
    }

    impl TrainObserver for Recording {
        fn on_fit_start(&mut self, meta: &clapf_telemetry::FitMeta) {
            self.meta = Some(meta.clone());
        }
        fn on_epoch(&mut self, stats: &clapf_telemetry::EpochStats) -> clapf_telemetry::Control {
            self.epochs.push(stats.clone());
            clapf_telemetry::Control::Continue
        }
        fn on_fit_end(&mut self, summary: &clapf_telemetry::FitSummary) {
            self.summary = Some(summary.clone());
        }
    }

    #[test]
    fn observer_leaves_bpr_fit_bit_identical() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(40)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 4_000,
                ..BprConfig::default()
            },
        };
        let plain = trainer.fit(&data, &mut SmallRng::seed_from_u64(50));
        let mut obs = Recording::default();
        let observed = trainer.fit_observed(&data, &mut SmallRng::seed_from_u64(50), &mut obs);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(plain.score(u, i).to_bits(), observed.score(u, i).to_bits());
            }
        }
        let meta = obs.meta.expect("fit_start fired");
        assert_eq!(meta.model, "BPR");
        assert_eq!(meta.iterations, 4_000);
        assert!(!obs.epochs.is_empty());
        assert_eq!(obs.epochs.last().unwrap().steps_total, 4_000);
        for e in &obs.epochs {
            assert!(e.loss.is_finite() && e.loss > 0.0, "loss = {}", e.loss);
            assert!((0.0..=1.0).contains(&e.grad_scale));
            assert!(e.user_norm.is_finite() && e.user_norm > 0.0);
        }
        assert_eq!(obs.summary.expect("fit_end fired").steps, 4_000);
    }

    #[test]
    fn parallel_observer_sees_start_and_end() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(41)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 4_000,
                parallel: ParallelConfig {
                    threads: 4,
                    chunk_size: 64,
                },
                ..BprConfig::default()
            },
        };
        let mut obs = Recording::default();
        let model = trainer.fit_parallel_observed(&data, 9, &mut obs);
        assert!(!model.model.has_non_finite());
        assert_eq!(obs.meta.expect("fit_start fired").threads, 4);
        // BPR's lock-free workers have no barriers, hence no epoch edges.
        assert!(obs.epochs.is_empty());
        let summary = obs.summary.expect("fit_end fired");
        assert_eq!(summary.steps, 4_000);
        assert!(!summary.diverged);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clapf-bpr-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Simulates a crash at an epoch edge: aborts after `0` reaches zero.
    /// `enabled()` is false so the RNG stream matches an unobserved fit.
    struct AbortAfterEpochs(usize);
    impl TrainObserver for AbortAfterEpochs {
        fn enabled(&self) -> bool {
            false
        }
        fn on_epoch(&mut self, _: &clapf_telemetry::EpochStats) -> clapf_telemetry::Control {
            self.0 -= 1;
            if self.0 == 0 {
                clapf_telemetry::Control::Abort
            } else {
                clapf_telemetry::Control::Continue
            }
        }
    }

    #[test]
    fn resumable_uninterrupted_matches_fit_bitwise() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(70)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 4_000,
                ..BprConfig::default()
            },
        };
        let plain = trainer.fit(&data, &mut SmallRng::seed_from_u64(71));
        let dir = ckpt_dir("uninterrupted");
        let ckpt = CheckpointConfig::new(&dir);
        let (resumable, report) = trainer
            .fit_resumable(&data, 71, &ckpt, &mut NoopObserver)
            .unwrap();
        assert!(report.resumed_from.is_none());
        assert_eq!(report.steps, 4_000);
        assert_eq!(report.recoveries, 0);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(plain.score(u, i).to_bits(), resumable.score(u, i).to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_after_interrupt_is_bit_identical() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(72)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 4_000,
                ..BprConfig::default()
            },
        };
        let full = trainer.fit(&data, &mut SmallRng::seed_from_u64(73));
        let dir = ckpt_dir("interrupt");
        let ckpt = CheckpointConfig::new(&dir);
        // First run "crashes" two synthetic epochs in.
        let (_, first) = trainer
            .fit_resumable(&data, 73, &ckpt, &mut AbortAfterEpochs(2))
            .unwrap();
        assert!(first.aborted_at.is_some(), "abort fired mid-run");

        let (resumed, report) = trainer
            .fit_resumable(&data, 73, &ckpt, &mut NoopObserver)
            .unwrap();
        assert!(report.resumed_from.unwrap() >= 1, "resumed mid-run");
        assert_eq!(report.steps, 4_000);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(full.score(u, i).to_bits(), resumed.score(u, i).to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn divergence_recovery_rolls_back_and_completes() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(74)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 4_000,
                sgd: SgdConfig {
                    learning_rate: 1e5,
                    ..SgdConfig::default()
                },
                ..BprConfig::default()
            },
        };
        let dir = ckpt_dir("diverge");
        let ckpt = CheckpointConfig {
            lr_backoff: 1e-6,
            max_retries: 2,
            ..CheckpointConfig::new(&dir)
        };
        let (model, report) = trainer
            .fit_resumable(&data, 75, &ckpt, &mut NoopObserver)
            .unwrap();
        assert!(report.recoveries >= 1, "lr 1e5 should diverge at least once");
        assert!(!report.diverged, "recovered run ends finite");
        assert!(!model.model.has_non_finite());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn label_and_finiteness() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(4)).unwrap();
        let model = quick().fit(&data, &mut SmallRng::seed_from_u64(5));
        assert_eq!(model.name(), "BPR");
        assert!(!model.model.has_non_finite());
    }
}
