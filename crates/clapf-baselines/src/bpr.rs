//! BPR — Bayesian Personalized Ranking (Rendle et al., UAI 2009).
//!
//! The seminal pairwise baseline: maximize `Σ ln σ(f_ui − f_uj)` over
//! observed/unobserved pairs by SGD (Eqs. 1–4 of the paper). CLAPF with
//! `λ = 0` coincides with this model; keeping a standalone implementation
//! both provides the baseline and cross-checks the reduction.

use clapf_core::objective::sigmoid;
use clapf_core::FactorRecommender;
use clapf_data::Interactions;
use clapf_mf::{Init, MfModel, SgdConfig};
use clapf_sampling::{sample_observed_pair, sample_unobserved_uniform};
use rand::Rng;

/// BPR hyper-parameters.
#[derive(Copy, Clone, Debug)]
pub struct BprConfig {
    /// Latent dimension (20 in the paper).
    pub dim: usize,
    /// Learning rate and regularization.
    pub sgd: SgdConfig,
    /// Total SGD steps; `0` = automatic (`100·|P|`, capped at 8 M).
    pub iterations: usize,
    /// Parameter initialization.
    pub init: Init,
}

impl Default for BprConfig {
    fn default() -> Self {
        BprConfig {
            dim: 20,
            sgd: SgdConfig::default(),
            iterations: 0,
            init: Init::default(),
        }
    }
}

/// The BPR trainer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Bpr {
    /// Hyper-parameters.
    pub config: BprConfig,
}

impl Bpr {
    /// Fits by SGD with uniform negative sampling.
    pub fn fit<R: Rng>(&self, data: &Interactions, rng: &mut R) -> FactorRecommender {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        let mut model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, rng);
        let iterations = if cfg.iterations > 0 {
            cfg.iterations
        } else {
            (100 * data.n_pairs()).clamp(1, 8_000_000)
        };
        let lr = cfg.sgd.learning_rate;
        let decay_u = lr * cfg.sgd.reg_user;
        let decay_v = lr * cfg.sgd.reg_item;
        let decay_b = lr * cfg.sgd.reg_bias;
        let mut u_old = vec![0.0f32; cfg.dim];
        let mut grad_u = vec![0.0f32; cfg.dim];

        for _ in 0..iterations {
            let (u, i) = sample_observed_pair(data, rng);
            let Some(j) = sample_unobserved_uniform(data, u, rng) else {
                continue;
            };
            let x = model.score(u, i) - model.score(u, j);
            let g = sigmoid(-x);

            model.copy_user_into(u, &mut u_old);
            for ((slot, &vi), &vj) in grad_u.iter_mut().zip(model.item(i)).zip(model.item(j)) {
                *slot = vi - vj;
            }
            model.sgd_user(u, lr * g, &grad_u, decay_u);
            model.sgd_item(i, lr * g, &u_old, decay_v);
            model.sgd_bias(i, lr, g, decay_b);
            model.sgd_item(j, -lr * g, &u_old, decay_v);
            model.sgd_bias(j, lr, -g, decay_b);
        }

        FactorRecommender {
            model,
            label: "BPR".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_core::Recommender;
    use clapf_data::split::{split, SplitStrategy};
    use clapf_data::synthetic::{generate, WorldConfig};
    use clapf_data::{ItemId, UserId};
    use clapf_metrics::{evaluate_serial, EvalConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quick() -> Bpr {
        Bpr {
            config: BprConfig {
                dim: 8,
                iterations: 12_000,
                ..BprConfig::default()
            },
        }
    }

    #[test]
    fn learns_better_than_chance() {
        let world = WorldConfig {
            n_users: 50,
            n_items: 80,
            target_pairs: 900,
            affinity_weight: 4.0,
            ..WorldConfig::default()
        };
        let data = generate(&world, &mut SmallRng::seed_from_u64(1)).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let s = split(&data, SplitStrategy::PerUser, 0.5, &mut rng).unwrap();
        let model = quick().fit(&s.train, &mut rng);
        let scorer = |u: UserId, out: &mut Vec<f32>| model.scores_into(u, out);
        let report = evaluate_serial(&scorer, &s.train, &s.test, &EvalConfig::at_5());
        assert!(report.auc > 0.62, "AUC = {}", report.auc);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(3)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 4,
                iterations: 2_000,
                ..BprConfig::default()
            },
        };
        let a = trainer.fit(&data, &mut SmallRng::seed_from_u64(7));
        let b = trainer.fit(&data, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a.score(UserId(0), ItemId(0)), b.score(UserId(0), ItemId(0)));
    }

    #[test]
    fn label_and_finiteness() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(4)).unwrap();
        let model = quick().fit(&data, &mut SmallRng::seed_from_u64(5));
        assert_eq!(model.name(), "BPR");
        assert!(!model.model.has_non_finite());
    }
}
