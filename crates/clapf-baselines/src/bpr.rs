//! BPR — Bayesian Personalized Ranking (Rendle et al., UAI 2009).
//!
//! The seminal pairwise baseline: maximize `Σ ln σ(f_ui − f_uj)` over
//! observed/unobserved pairs by SGD (Eqs. 1–4 of the paper). CLAPF with
//! `λ = 0` coincides with this model; keeping a standalone implementation
//! both provides the baseline and cross-checks the reduction.

use clapf_core::objective::sigmoid;
use clapf_core::{FactorRecommender, ParallelConfig};
use clapf_data::Interactions;
use clapf_mf::{Init, MfModel, SgdConfig, SharedMfModel};
use clapf_sampling::{sample_observed_pair, sample_unobserved_uniform};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// BPR hyper-parameters.
#[derive(Copy, Clone, Debug)]
pub struct BprConfig {
    /// Latent dimension (20 in the paper).
    pub dim: usize,
    /// Learning rate and regularization.
    pub sgd: SgdConfig,
    /// Total SGD steps; `0` = automatic (`100·|P|`, capped at 8 M).
    pub iterations: usize,
    /// Parameter initialization.
    pub init: Init,
    /// Multi-threaded training settings for [`Bpr::fit_parallel`].
    pub parallel: ParallelConfig,
}

impl Default for BprConfig {
    fn default() -> Self {
        BprConfig {
            dim: 20,
            sgd: SgdConfig::default(),
            iterations: 0,
            init: Init::default(),
            parallel: ParallelConfig::default(),
        }
    }
}

/// The BPR trainer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Bpr {
    /// Hyper-parameters.
    pub config: BprConfig,
}

impl Bpr {
    /// Fits by SGD with uniform negative sampling.
    pub fn fit<R: Rng>(&self, data: &Interactions, rng: &mut R) -> FactorRecommender {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        let model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, rng);
        let shared = SharedMfModel::new(model);
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let params = BprParams::new(&cfg.sgd);
        let mut u_old = vec![0.0f32; cfg.dim];
        let mut grad_u = vec![0.0f32; cfg.dim];

        for _ in 0..iterations {
            bpr_step(&shared, data, rng, &params, &mut u_old, &mut grad_u);
        }

        FactorRecommender {
            model: shared.into_inner(),
            label: "BPR".into(),
        }
    }

    /// Fits with Hogwild-style lock-free parallel SGD, sharing the model
    /// across `config.parallel.threads` workers (0 = all cores). BPR's
    /// negative sampler is stateless, so workers need no epoch barrier —
    /// they just drain a shared step counter in chunks. `threads = 1` is
    /// bit-identical to [`fit`](Bpr::fit) with
    /// `SmallRng::seed_from_u64(base_seed)`.
    pub fn fit_parallel(&self, data: &Interactions, base_seed: u64) -> FactorRecommender {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        let threads = cfg.parallel.resolve_threads();
        let chunk = cfg.parallel.resolve_chunk();

        let mut init_rng = SmallRng::seed_from_u64(base_seed);
        let model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, &mut init_rng);
        let shared = SharedMfModel::new(model);
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let params = BprParams::new(&cfg.sgd);

        // Worker 0 continues the init stream (serial-equivalent); the rest
        // get independent streams.
        let mut rngs = Vec::with_capacity(threads);
        rngs.push(init_rng);
        for w in 1..threads {
            rngs.push(SmallRng::seed_from_u64(base_seed.wrapping_add(w as u64)));
        }
        let counter = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for mut wrng in rngs {
                let shared = &shared;
                let counter = &counter;
                let params = &params;
                scope.spawn(move || {
                    let mut u_old = vec![0.0f32; cfg.dim];
                    let mut grad_u = vec![0.0f32; cfg.dim];
                    loop {
                        let s = counter.fetch_add(chunk, Ordering::Relaxed);
                        if s >= iterations {
                            break;
                        }
                        for _ in s..(s + chunk).min(iterations) {
                            bpr_step(shared, data, &mut wrng, params, &mut u_old, &mut grad_u);
                        }
                    }
                });
            }
        });

        FactorRecommender {
            model: shared.into_inner(),
            label: "BPR".into(),
        }
    }
}

pub(crate) fn resolve_iterations(iterations: usize, n_pairs: usize) -> usize {
    if iterations > 0 {
        iterations
    } else {
        (100 * n_pairs).clamp(1, 8_000_000)
    }
}

struct BprParams {
    lr: f32,
    decay_u: f32,
    decay_v: f32,
    decay_b: f32,
}

impl BprParams {
    fn new(sgd: &SgdConfig) -> Self {
        let lr = sgd.learning_rate;
        BprParams {
            lr,
            decay_u: lr * sgd.reg_user,
            decay_v: lr * sgd.reg_item,
            decay_b: lr * sgd.reg_bias,
        }
    }
}

/// One BPR SGD step (Eqs. 1–4), shared by the serial and parallel paths.
#[inline]
fn bpr_step(
    shared: &SharedMfModel,
    data: &Interactions,
    rng: &mut dyn RngCore,
    p: &BprParams,
    u_old: &mut [f32],
    grad_u: &mut [f32],
) {
    let model = shared.view();
    let (u, i) = sample_observed_pair(data, rng);
    let Some(j) = sample_unobserved_uniform(data, u, rng) else {
        return;
    };
    let x = model.score(u, i) - model.score(u, j);
    let g = sigmoid(-x);

    model.copy_user_into(u, u_old);
    for ((slot, &vi), &vj) in grad_u.iter_mut().zip(model.item(i)).zip(model.item(j)) {
        *slot = vi - vj;
    }
    shared.sgd_user(u, p.lr * g, grad_u, p.decay_u);
    shared.sgd_item(i, p.lr * g, u_old, p.decay_v);
    shared.sgd_bias(i, p.lr, g, p.decay_b);
    shared.sgd_item(j, -p.lr * g, u_old, p.decay_v);
    shared.sgd_bias(j, p.lr, -g, p.decay_b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_core::Recommender;
    use clapf_data::split::{split, SplitStrategy};
    use clapf_data::synthetic::{generate, WorldConfig};
    use clapf_data::{ItemId, UserId};
    use clapf_metrics::{evaluate_serial, EvalConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quick() -> Bpr {
        Bpr {
            config: BprConfig {
                dim: 8,
                iterations: 12_000,
                ..BprConfig::default()
            },
        }
    }

    #[test]
    fn learns_better_than_chance() {
        let world = WorldConfig {
            n_users: 50,
            n_items: 80,
            target_pairs: 900,
            affinity_weight: 4.0,
            ..WorldConfig::default()
        };
        let data = generate(&world, &mut SmallRng::seed_from_u64(1)).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let s = split(&data, SplitStrategy::PerUser, 0.5, &mut rng).unwrap();
        let model = quick().fit(&s.train, &mut rng);
        let scorer = |u: UserId, out: &mut Vec<f32>| model.scores_into(u, out);
        let report = evaluate_serial(&scorer, &s.train, &s.test, &EvalConfig::at_5());
        assert!(report.auc > 0.62, "AUC = {}", report.auc);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(3)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 4,
                iterations: 2_000,
                ..BprConfig::default()
            },
        };
        let a = trainer.fit(&data, &mut SmallRng::seed_from_u64(7));
        let b = trainer.fit(&data, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a.score(UserId(0), ItemId(0)), b.score(UserId(0), ItemId(0)));
    }

    #[test]
    fn threads_1_is_bitwise_serial() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(20)).unwrap();
        let trainer = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 4_000,
                ..BprConfig::default()
            },
        };
        let serial = trainer.fit(&data, &mut SmallRng::seed_from_u64(33));
        let parallel = trainer.fit_parallel(&data, 33);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(serial.score(u, i).to_bits(), parallel.score(u, i).to_bits());
            }
        }
    }

    #[test]
    fn parallel_training_stays_finite() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(21)).unwrap();
        let model = Bpr {
            config: BprConfig {
                dim: 6,
                iterations: 8_000,
                parallel: ParallelConfig {
                    threads: 4,
                    chunk_size: 64,
                },
                ..BprConfig::default()
            },
        }
        .fit_parallel(&data, 9);
        assert!(!model.model.has_non_finite());
    }

    #[test]
    fn label_and_finiteness() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(4)).unwrap();
        let model = quick().fit(&data, &mut SmallRng::seed_from_u64(5));
        assert_eq!(model.name(), "BPR");
        assert!(!model.model.has_non_finite());
    }
}
