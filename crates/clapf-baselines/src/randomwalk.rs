//! RandomWalk: neighborhood propagation over the user–item bipartite graph.
//!
//! The paper's description: "estimates the user's preference on an item via
//! a weighted average of all reachable users' preferences on that item",
//! with a *walk length* and a *reachable threshold* as hyper-parameters.
//!
//! We implement the deterministic expectation of those walks: a
//! user→item→user propagation round reaches every user that co-observed an
//! item with the source, weighted by the co-observation count; `hops` rounds
//! correspond to walk length `2·hops` (the paper searches walk lengths
//! {20, 40, 60, 80}, i.e. re-weighting of multi-hop neighbours — on the
//! datasets' densities one or two expectation rounds already saturate the
//! reachable set, which is why the paper "makes some tradeoffs between
//! efficiency and effectiveness" for this method). Neighbours whose overlap
//! falls below `threshold` are discarded, exactly the paper's reachability
//! threshold.

use clapf_core::Recommender;
use clapf_data::{Interactions, ItemId, UserId};
use std::collections::HashMap;

/// RandomWalk hyper-parameters.
#[derive(Copy, Clone, Debug)]
pub struct RandomWalkConfig {
    /// Propagation rounds (walk length = 2·hops).
    pub hops: usize,
    /// Minimum co-observation count for a user to count as reachable.
    pub threshold: usize,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig {
            hops: 1,
            threshold: 2,
        }
    }
}

/// The RandomWalk trainer.
#[derive(Copy, Clone, Debug, Default)]
pub struct RandomWalk {
    /// Hyper-parameters.
    pub config: RandomWalkConfig,
}

/// Fitted RandomWalk model. Keeps the training interactions and computes
/// neighbourhood scores lazily per user (each evaluation scores a user once,
/// so caching per-user vectors would only cost memory).
#[derive(Clone, Debug)]
pub struct RandomWalkModel {
    config: RandomWalkConfig,
    train: Interactions,
}

impl RandomWalk {
    /// "Fits" the model (stores the graph; all computation is at scoring).
    pub fn fit(&self, data: &Interactions) -> RandomWalkModel {
        RandomWalkModel {
            config: self.config,
            train: data.clone(),
        }
    }
}

impl RandomWalkModel {
    /// One expectation round of user→item→user propagation: distributes each
    /// user's mass to co-observing users, weighted by co-observation counts.
    fn propagate(&self, mass: &HashMap<u32, f64>) -> HashMap<u32, f64> {
        let mut next: HashMap<u32, f64> = HashMap::new();
        for (&v, &w) in mass {
            for &item in self.train.items_of(UserId(v)) {
                for &reached in self.train.users_of(item) {
                    *next.entry(reached.0).or_insert(0.0) += w;
                }
            }
        }
        next
    }

    /// The reachable-user weights of `u` after `hops` rounds, thresholded.
    fn reachable(&self, u: UserId) -> HashMap<u32, f64> {
        let mut mass = HashMap::from([(u.0, 1.0f64)]);
        for _ in 0..self.config.hops.max(1) {
            mass = self.propagate(&mass);
        }
        mass.remove(&u.0); // a user is not her own neighbour
        mass.retain(|_, w| *w >= self.config.threshold as f64);
        mass
    }
}

impl Recommender for RandomWalkModel {
    fn name(&self) -> String {
        "RandomWalk".into()
    }

    fn n_items(&self) -> u32 {
        self.train.n_items()
    }

    fn score(&self, u: UserId, i: ItemId) -> f32 {
        let mut out = Vec::new();
        self.scores_into(u, &mut out);
        out[i.index()]
    }

    fn scores_into(&self, u: UserId, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.train.n_items() as usize, 0.0);
        let neighbours = self.reachable(u);
        let total: f64 = neighbours.values().sum();
        if total == 0.0 {
            return;
        }
        for (&v, &w) in &neighbours {
            for &item in self.train.items_of(UserId(v)) {
                out[item.index()] += (w / total) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_data::InteractionsBuilder;

    /// Two communities: users {0,1,2} like items {0,1,2}, users {3,4} like
    /// items {5,6}. User 0 has not seen item 2 yet.
    fn communities() -> Interactions {
        let mut b = InteractionsBuilder::new(5, 7);
        for (u, i) in [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (1, 2),
            (2, 0),
            (2, 2),
            (3, 5),
            (3, 6),
            (4, 5),
            (4, 6),
        ] {
            b.push(UserId(u), ItemId(i)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn recommends_within_community() {
        let model = RandomWalk {
            config: RandomWalkConfig {
                hops: 1,
                threshold: 1,
            },
        }
        .fit(&communities());
        let mut scores = Vec::new();
        model.scores_into(UserId(0), &mut scores);
        // Item 2 (liked by the community) must beat items 5/6 (other community).
        assert!(scores[2] > scores[5]);
        assert!(scores[2] > scores[6]);
        assert_eq!(scores[5], 0.0);
    }

    #[test]
    fn threshold_prunes_weak_neighbours() {
        let data = communities();
        // User 2 shares 1 item with user 0 (item 0) and 2 with user 1.
        let strict = RandomWalk {
            config: RandomWalkConfig {
                hops: 1,
                threshold: 2,
            },
        }
        .fit(&data);
        let mut scores = Vec::new();
        strict.scores_into(UserId(2), &mut scores);
        // Only user 1 survives the threshold; its items are 0, 1, 2.
        assert!(scores[1] > 0.0);
        assert_eq!(scores[5], 0.0);
    }

    #[test]
    fn isolated_user_gets_zero_scores() {
        let mut b = InteractionsBuilder::new(3, 3);
        b.push(UserId(0), ItemId(0)).unwrap();
        b.push(UserId(1), ItemId(1)).unwrap();
        b.push(UserId(2), ItemId(2)).unwrap();
        let data = b.build().unwrap();
        let model = RandomWalk::default().fit(&data);
        let mut scores = Vec::new();
        model.scores_into(UserId(0), &mut scores);
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn two_hops_reach_further() {
        // Chain: u0-{i0}, u1-{i0,i1}, u2-{i1,i2}. With 1 hop u0 reaches u1
        // only; with 2 hops it also reaches u2 (via u1).
        let mut b = InteractionsBuilder::new(3, 3);
        for (u, i) in [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)] {
            b.push(UserId(u), ItemId(i)).unwrap();
        }
        let data = b.build().unwrap();
        let one = RandomWalk {
            config: RandomWalkConfig {
                hops: 1,
                threshold: 1,
            },
        }
        .fit(&data);
        let two = RandomWalk {
            config: RandomWalkConfig {
                hops: 2,
                threshold: 1,
            },
        }
        .fit(&data);
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        one.scores_into(UserId(0), &mut s1);
        two.scores_into(UserId(0), &mut s2);
        assert_eq!(s1[2], 0.0, "one hop should not reach item 2");
        assert!(s2[2] > 0.0, "two hops should reach item 2");
    }

    #[test]
    fn name_and_dims() {
        let model = RandomWalk::default().fit(&communities());
        assert_eq!(model.name(), "RandomWalk");
        assert_eq!(model.n_items(), 7);
        // score() agrees with scores_into().
        let mut s = Vec::new();
        model.scores_into(UserId(1), &mut s);
        assert_eq!(model.score(UserId(1), ItemId(2)), s[2]);
    }
}
