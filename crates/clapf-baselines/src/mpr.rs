//! MPR — Multiple Pairwise Ranking (Yu et al., CIKM 2018).
//!
//! MPR relaxes BPR's single pairwise assumption with *multiple* pairwise
//! criteria over three item classes: observed `i`, "uncertain" `k` and
//! negative `j`, optimizing `ln σ(λ(f_ui − f_uk) + (1 − λ)(f_uk − f_uj))`.
//!
//! The original uses auxiliary view data for the uncertain class. The CLAPF
//! paper evaluates MPR on datasets with no view signal, so the uncertain
//! class must be derived from the data; we use the standard popularity
//! proxy: the most popular *unobserved* items are plausibly-seen-but-not-
//! chosen ("uncertain"), the long tail is treated as truly negative. The
//! uncertain pool is the most-popular half of the catalogue. This
//! substitution is recorded in DESIGN.md.

use crate::bpr::resolve_iterations;
use crate::observe::{build_epoch_stats, epoch_control, epoch_len, StepTally};
use crate::resume::{fit_resumable_loop, ResumeReport};
use clapf_core::checkpoint::{self, CheckpointConfig, CheckpointError};
use clapf_core::objective::{ln_sigmoid, sigmoid};
use clapf_core::{FactorRecommender, ParallelConfig};
use clapf_data::{Interactions, ItemId, UserId};
use clapf_mf::{Init, MfModel, SgdConfig, SharedMfModel};
use clapf_sampling::sample_observed_pair;
use clapf_telemetry::{FitMeta, FitSummary, NoopObserver, TrainObserver};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// MPR hyper-parameters (the paper searches λ ∈ {0.0, 0.1, …, 1.0}).
#[derive(Copy, Clone, Debug)]
pub struct MprConfig {
    /// Latent dimension.
    pub dim: usize,
    /// Tradeoff between the two pairwise criteria.
    pub lambda: f32,
    /// Learning rate and regularization.
    pub sgd: SgdConfig,
    /// Total SGD steps; `0` = automatic (`100·|P|`, capped at 8 M).
    pub iterations: usize,
    /// Parameter initialization.
    pub init: Init,
    /// Fraction of the catalogue (by popularity) forming the uncertain pool.
    pub uncertain_fraction: f64,
    /// Multi-threaded training settings for [`Mpr::fit_parallel`].
    pub parallel: ParallelConfig,
}

impl Default for MprConfig {
    fn default() -> Self {
        MprConfig {
            dim: 20,
            lambda: 0.4,
            sgd: SgdConfig::default(),
            iterations: 0,
            init: Init::default(),
            uncertain_fraction: 0.5,
            parallel: ParallelConfig::default(),
        }
    }
}

/// The MPR trainer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Mpr {
    /// Hyper-parameters.
    pub config: MprConfig,
}

impl Mpr {
    /// Fits by SGD over (observed, uncertain, negative) triples.
    pub fn fit<R: Rng>(&self, data: &Interactions, rng: &mut R) -> FactorRecommender {
        self.fit_observed(data, rng, &mut NoopObserver)
    }

    /// [`fit`](Mpr::fit) under a [`TrainObserver`]. Like BPR, MPR has no
    /// sampler refresh, so the loop is chunked into synthetic epochs (one
    /// data pass each, at most 100 per run) purely for observation — the
    /// step order and RNG stream match the flat loop bit for bit. A
    /// divergence or [`Control::Abort`](clapf_telemetry::Control::Abort)
    /// stops training at the epoch edge.
    pub fn fit_observed<R: Rng>(
        &self,
        data: &Interactions,
        rng: &mut R,
        observer: &mut dyn TrainObserver,
    ) -> FactorRecommender {
        let cfg = &self.config;
        cfg.check();
        let start = Instant::now();
        let model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, rng);
        let shared = SharedMfModel::new(model);
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let pools = ItemPools::from_popularity(data, cfg.uncertain_fraction);
        let params = MprParams::new(cfg);
        let observing = observer.enabled();

        observer.on_fit_start(&FitMeta {
            model: format!("MPR(λ={:.1})", cfg.lambda),
            sampler: "PopularityPools".to_string(),
            dim: cfg.dim,
            iterations,
            threads: 1,
            n_users: data.n_users(),
            n_items: data.n_items(),
            n_pairs: data.n_pairs(),
        });

        let epoch_steps = epoch_len(iterations, data.n_pairs());
        let n_epochs = iterations.div_ceil(epoch_steps);
        let mut u_old = vec![0.0f32; cfg.dim];
        let mut grad_u = vec![0.0f32; cfg.dim];
        let mut tally = StepTally::new(observing);
        let mut steps_done = 0usize;
        let mut aborted_at = None;
        let mut epoch_clock = Instant::now();

        for epoch in 0..n_epochs {
            let epoch_start = epoch * epoch_steps;
            let epoch_end = ((epoch + 1) * epoch_steps).min(iterations);
            for _ in epoch_start..epoch_end {
                mpr_step(
                    &shared, data, &pools, rng, &params, &mut u_old, &mut grad_u, &mut tally,
                );
            }
            steps_done = epoch_end;

            let now = Instant::now();
            let stats = build_epoch_stats(
                epoch,
                epoch_end - epoch_start,
                steps_done,
                now - epoch_clock,
                tally.take(),
                observing.then(|| shared.view()),
            );
            epoch_clock = now;
            if epoch_control(observer, &stats, steps_done) {
                if steps_done < iterations {
                    aborted_at = Some(steps_done);
                }
                break;
            }
        }

        let model = shared.into_inner();
        observer.on_fit_end(&FitSummary {
            steps: steps_done,
            elapsed: start.elapsed(),
            diverged: model.has_non_finite(),
            aborted_at,
        });
        FactorRecommender {
            model,
            label: format!("MPR(λ={:.1})", cfg.lambda),
        }
    }

    /// Trains **crash-safely**, mirroring
    /// [`Bpr::fit_resumable`](crate::Bpr::fit_resumable): checkpoints at
    /// synthetic-epoch edges, resumes from the newest valid checkpoint, and
    /// rolls back with a shrunk learning rate on divergence.
    ///
    /// MPR's popularity pools are rebuilt deterministically from the data on
    /// every run, so — like the CLAPF trainer's rank-aware samplers — they
    /// never need to be serialized; a checkpoint (model + RNG state + epoch)
    /// captures the whole run and the bit-identity contracts hold.
    pub fn fit_resumable(
        &self,
        data: &Interactions,
        base_seed: u64,
        ckpt: &CheckpointConfig,
        observer: &mut dyn TrainObserver,
    ) -> Result<(FactorRecommender, ResumeReport), CheckpointError> {
        let cfg = &self.config;
        cfg.check();
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let epoch_steps = epoch_len(iterations, data.n_pairs());
        let pools = ItemPools::from_popularity(data, cfg.uncertain_fraction);
        let label = format!("MPR(λ={:.1})", cfg.lambda);
        let fp = checkpoint::fingerprint(&[
            ("model", "MPR".to_string()),
            ("dim", cfg.dim.to_string()),
            // λ at full precision — the display label rounds to one decimal.
            ("lambda", format!("{}", cfg.lambda)),
            ("uncertain", format!("{}", cfg.uncertain_fraction)),
            ("sgd", format!("{:?}", cfg.sgd)),
            ("init", format!("{:?}", cfg.init)),
            ("iterations", iterations.to_string()),
            ("epoch", epoch_steps.to_string()),
            ("sampler", "PopularityPools".to_string()),
            ("seed", base_seed.to_string()),
            (
                "data",
                format!("{}x{}:{}", data.n_users(), data.n_items(), data.n_pairs()),
            ),
        ]);
        let meta = FitMeta {
            model: label.clone(),
            sampler: "PopularityPools".to_string(),
            dim: cfg.dim,
            iterations,
            threads: 1,
            n_users: data.n_users(),
            n_items: data.n_items(),
            n_pairs: data.n_pairs(),
        };
        let mut u_old = vec![0.0f32; cfg.dim];
        let mut grad_u = vec![0.0f32; cfg.dim];
        let (model, report) = fit_resumable_loop(
            data,
            cfg.dim,
            cfg.init,
            iterations,
            meta,
            fp,
            base_seed,
            ckpt,
            observer,
            |scale| MprParams::scaled(cfg, scale),
            |shared, rng, p, tally| {
                mpr_step(shared, data, &pools, rng, p, &mut u_old, &mut grad_u, tally)
            },
        )?;
        Ok((FactorRecommender { model, label }, report))
    }

    /// Fits with Hogwild-style lock-free parallel SGD. The popularity pools
    /// are computed once and shared read-only; like BPR, MPR's samplers are
    /// stateless so workers drain a shared step counter without barriers.
    /// `threads = 1` is bit-identical to [`fit`](Mpr::fit) with
    /// `SmallRng::seed_from_u64(base_seed)`.
    pub fn fit_parallel(&self, data: &Interactions, base_seed: u64) -> FactorRecommender {
        self.fit_parallel_observed(data, base_seed, &mut NoopObserver)
    }

    /// [`fit_parallel`](Mpr::fit_parallel) under a [`TrainObserver`]. As
    /// with BPR, the lock-free workers have no epoch barriers, so the
    /// observer receives `on_fit_start` and `on_fit_end` (with a post-join
    /// divergence check) but no `on_epoch` callbacks; use
    /// [`fit_observed`](Mpr::fit_observed) for per-epoch statistics.
    pub fn fit_parallel_observed(
        &self,
        data: &Interactions,
        base_seed: u64,
        observer: &mut dyn TrainObserver,
    ) -> FactorRecommender {
        let cfg = &self.config;
        cfg.check();
        let start = Instant::now();
        let threads = cfg.parallel.resolve_threads();
        let chunk = cfg.parallel.resolve_chunk();

        let mut init_rng = SmallRng::seed_from_u64(base_seed);
        let model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, &mut init_rng);
        let shared = SharedMfModel::new(model);
        let iterations = resolve_iterations(cfg.iterations, data.n_pairs());
        let pools = ItemPools::from_popularity(data, cfg.uncertain_fraction);
        let params = MprParams::new(cfg);

        observer.on_fit_start(&FitMeta {
            model: format!("MPR(λ={:.1})", cfg.lambda),
            sampler: "PopularityPools".to_string(),
            dim: cfg.dim,
            iterations,
            threads,
            n_users: data.n_users(),
            n_items: data.n_items(),
            n_pairs: data.n_pairs(),
        });

        let mut rngs = Vec::with_capacity(threads);
        rngs.push(init_rng);
        for w in 1..threads {
            rngs.push(SmallRng::seed_from_u64(base_seed.wrapping_add(w as u64)));
        }
        let counter = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for mut wrng in rngs {
                let shared = &shared;
                let counter = &counter;
                let params = &params;
                let pools = &pools;
                scope.spawn(move || {
                    let mut u_old = vec![0.0f32; cfg.dim];
                    let mut grad_u = vec![0.0f32; cfg.dim];
                    // No barriers ⇒ no consistent epoch edges; tallies stay
                    // disabled and the hot loop is telemetry-free.
                    let mut tally = StepTally::new(false);
                    loop {
                        let s = counter.fetch_add(chunk, Ordering::Relaxed);
                        if s >= iterations {
                            break;
                        }
                        for _ in s..(s + chunk).min(iterations) {
                            mpr_step(
                                shared, data, pools, &mut wrng, params, &mut u_old, &mut grad_u,
                                &mut tally,
                            );
                        }
                    }
                });
            }
        });

        let model = shared.into_inner();
        observer.on_fit_end(&FitSummary {
            steps: iterations,
            elapsed: start.elapsed(),
            diverged: model.has_non_finite(),
            aborted_at: None,
        });
        FactorRecommender {
            model,
            label: format!("MPR(λ={:.1})", cfg.lambda),
        }
    }
}

impl MprConfig {
    fn check(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda must be in [0, 1]"
        );
    }
}

/// Popularity split of the catalogue into uncertain head / negative tail.
struct ItemPools {
    by_pop: Vec<ItemId>,
    head: usize,
}

impl ItemPools {
    fn from_popularity(data: &Interactions, uncertain_fraction: f64) -> Self {
        let mut by_pop: Vec<ItemId> = (0..data.n_items()).map(ItemId).collect();
        let pop = data.item_popularity();
        by_pop.sort_unstable_by(|&a, &b| pop[b.index()].cmp(&pop[a.index()]).then(a.cmp(&b)));
        let head = ((data.n_items() as f64 * uncertain_fraction) as usize)
            .clamp(1, data.n_items() as usize - 1);
        ItemPools { by_pop, head }
    }

    fn uncertain(&self) -> &[ItemId] {
        &self.by_pop[..self.head]
    }

    fn negative(&self) -> &[ItemId] {
        &self.by_pop[self.head..]
    }
}

struct MprParams {
    lambda: f32,
    ci: f32,
    ck: f32,
    cj: f32,
    lr: f32,
    decay_u: f32,
    decay_v: f32,
    decay_b: f32,
}

impl MprParams {
    fn new(cfg: &MprConfig) -> Self {
        Self::scaled(cfg, 1.0)
    }

    /// `lr_scale` multiplies the learning rate (divergence-recovery
    /// backoff); `1.0` is bitwise-exact, so the resumable path at scale 1
    /// steps identically to [`new`](MprParams::new).
    fn scaled(cfg: &MprConfig, lr_scale: f32) -> Self {
        let lambda = cfg.lambda;
        let lr = cfg.sgd.learning_rate * lr_scale;
        MprParams {
            lambda,
            // R = λ f_ui + (1 − 2λ) f_uk − (1 − λ) f_uj
            ci: lambda,
            ck: 1.0 - 2.0 * lambda,
            cj: -(1.0 - lambda),
            lr,
            decay_u: lr * cfg.sgd.reg_user,
            decay_v: lr * cfg.sgd.reg_item,
            decay_b: lr * cfg.sgd.reg_bias,
        }
    }
}

fn draw(
    pool: &[ItemId],
    data: &Interactions,
    u: UserId,
    rng: &mut dyn RngCore,
) -> Option<ItemId> {
    for _ in 0..64 {
        let c = pool[rng.gen_range(0..pool.len())];
        if !data.contains(u, c) {
            return Some(c);
        }
    }
    None
}

/// One MPR SGD step, shared by the serial and parallel paths.
#[inline]
#[allow(clippy::too_many_arguments)]
fn mpr_step(
    shared: &SharedMfModel,
    data: &Interactions,
    pools: &ItemPools,
    rng: &mut dyn RngCore,
    p: &MprParams,
    u_old: &mut [f32],
    grad_u: &mut [f32],
    tally: &mut StepTally,
) {
    let model = shared.view();
    let (u, i) = sample_observed_pair(data, rng);
    let Some(k) = draw(pools.uncertain(), data, u, rng) else {
        if tally.enabled {
            tally.skipped += 1;
        }
        return;
    };
    let Some(j) = draw(pools.negative(), data, u, rng) else {
        if tally.enabled {
            tally.skipped += 1;
        }
        return;
    };

    let r = p.lambda * (model.score(u, i) - model.score(u, k))
        + (1.0 - p.lambda) * (model.score(u, k) - model.score(u, j));
    let g = sigmoid(-r);

    if tally.enabled {
        tally.sampled += 1;
        tally.loss += -ln_sigmoid(r as f64);
        tally.gsum += g as f64;
    }

    model.copy_user_into(u, u_old);
    grad_u.fill(0.0);
    for (t, c) in [(i, p.ci), (k, p.ck), (j, p.cj)] {
        if c != 0.0 {
            for (slot, &w) in grad_u.iter_mut().zip(model.item(t)) {
                *slot += c * w;
            }
        }
    }
    shared.sgd_user(u, p.lr * g, grad_u, p.decay_u);
    for (t, c) in [(i, p.ci), (k, p.ck), (j, p.cj)] {
        shared.sgd_item(t, p.lr * g * c, u_old, p.decay_v);
        shared.sgd_bias(t, p.lr, g * c, p.decay_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_core::Recommender;
    use clapf_data::split::{split, SplitStrategy};
    use clapf_data::synthetic::{generate, WorldConfig};
    use clapf_data::UserId;
    use clapf_metrics::{evaluate_serial, EvalConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quick(lambda: f32) -> Mpr {
        Mpr {
            config: MprConfig {
                dim: 8,
                lambda,
                iterations: 12_000,
                ..MprConfig::default()
            },
        }
    }

    #[test]
    fn learns_better_than_chance() {
        let world = WorldConfig {
            n_users: 50,
            n_items: 80,
            target_pairs: 900,
            affinity_weight: 4.0,
            ..WorldConfig::default()
        };
        let data = generate(&world, &mut SmallRng::seed_from_u64(10)).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let s = split(&data, SplitStrategy::PerUser, 0.5, &mut rng).unwrap();
        let model = quick(0.4).fit(&s.train, &mut rng);
        let scorer = |u: UserId, out: &mut Vec<f32>| model.scores_into(u, out);
        let report = evaluate_serial(&scorer, &s.train, &s.test, &EvalConfig::at_5());
        assert!(report.auc > 0.6, "AUC = {}", report.auc);
    }

    #[test]
    fn label_includes_lambda() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(12)).unwrap();
        let model = Mpr {
            config: MprConfig {
                dim: 4,
                lambda: 0.3,
                iterations: 100,
                ..MprConfig::default()
            },
        }
        .fit(&data, &mut SmallRng::seed_from_u64(13));
        assert_eq!(model.name(), "MPR(λ=0.3)");
        assert!(!model.model.has_non_finite());
    }

    #[test]
    fn threads_1_is_bitwise_serial() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(30)).unwrap();
        let trainer = Mpr {
            config: MprConfig {
                dim: 6,
                lambda: 0.4,
                iterations: 4_000,
                ..MprConfig::default()
            },
        };
        let serial = trainer.fit(&data, &mut SmallRng::seed_from_u64(44));
        let parallel = trainer.fit_parallel(&data, 44);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(serial.score(u, i).to_bits(), parallel.score(u, i).to_bits());
            }
        }
    }

    #[test]
    fn parallel_training_stays_finite() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(31)).unwrap();
        let model = Mpr {
            config: MprConfig {
                dim: 6,
                iterations: 8_000,
                parallel: ParallelConfig {
                    threads: 4,
                    chunk_size: 64,
                },
                ..MprConfig::default()
            },
        }
        .fit_parallel(&data, 7);
        assert!(!model.model.has_non_finite());
    }

    #[test]
    fn observer_leaves_mpr_fit_bit_identical() {
        #[derive(Default)]
        struct Recording {
            meta: Option<clapf_telemetry::FitMeta>,
            epochs: Vec<clapf_telemetry::EpochStats>,
        }
        impl TrainObserver for Recording {
            fn on_fit_start(&mut self, meta: &clapf_telemetry::FitMeta) {
                self.meta = Some(meta.clone());
            }
            fn on_epoch(
                &mut self,
                stats: &clapf_telemetry::EpochStats,
            ) -> clapf_telemetry::Control {
                self.epochs.push(stats.clone());
                clapf_telemetry::Control::Continue
            }
        }
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(42)).unwrap();
        let trainer = Mpr {
            config: MprConfig {
                dim: 6,
                lambda: 0.4,
                iterations: 4_000,
                ..MprConfig::default()
            },
        };
        let plain = trainer.fit(&data, &mut SmallRng::seed_from_u64(60));
        let mut obs = Recording::default();
        let observed = trainer.fit_observed(&data, &mut SmallRng::seed_from_u64(60), &mut obs);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(plain.score(u, i).to_bits(), observed.score(u, i).to_bits());
            }
        }
        let meta = obs.meta.expect("fit_start fired");
        assert_eq!(meta.model, "MPR(λ=0.4)");
        assert_eq!(meta.sampler, "PopularityPools");
        assert!(!obs.epochs.is_empty());
        assert_eq!(obs.epochs.last().unwrap().steps_total, 4_000);
        for e in &obs.epochs {
            assert!(e.loss.is_finite() && e.loss > 0.0);
            assert!(e.item_norm.is_finite() && e.item_norm > 0.0);
        }
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clapf-mpr-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Simulates a crash at an epoch edge; `enabled()` is false so the RNG
    /// stream matches an unobserved fit.
    struct AbortAfterEpochs(usize);
    impl TrainObserver for AbortAfterEpochs {
        fn enabled(&self) -> bool {
            false
        }
        fn on_epoch(&mut self, _: &clapf_telemetry::EpochStats) -> clapf_telemetry::Control {
            self.0 -= 1;
            if self.0 == 0 {
                clapf_telemetry::Control::Abort
            } else {
                clapf_telemetry::Control::Continue
            }
        }
    }

    #[test]
    fn resumable_uninterrupted_matches_fit_bitwise() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(80)).unwrap();
        let trainer = Mpr {
            config: MprConfig {
                dim: 6,
                lambda: 0.4,
                iterations: 4_000,
                ..MprConfig::default()
            },
        };
        let plain = trainer.fit(&data, &mut SmallRng::seed_from_u64(81));
        let dir = ckpt_dir("uninterrupted");
        let ckpt = clapf_core::CheckpointConfig::new(&dir);
        let (resumable, report) = trainer
            .fit_resumable(&data, 81, &ckpt, &mut clapf_core::NoopObserver)
            .unwrap();
        assert!(report.resumed_from.is_none());
        assert_eq!(report.steps, 4_000);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(plain.score(u, i).to_bits(), resumable.score(u, i).to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_after_interrupt_is_bit_identical() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(82)).unwrap();
        let trainer = Mpr {
            config: MprConfig {
                dim: 6,
                lambda: 0.4,
                iterations: 4_000,
                ..MprConfig::default()
            },
        };
        let full = trainer.fit(&data, &mut SmallRng::seed_from_u64(83));
        let dir = ckpt_dir("interrupt");
        let ckpt = clapf_core::CheckpointConfig::new(&dir);
        let (_, first) = trainer
            .fit_resumable(&data, 83, &ckpt, &mut AbortAfterEpochs(2))
            .unwrap();
        assert!(first.aborted_at.is_some(), "abort fired mid-run");

        let (resumed, report) = trainer
            .fit_resumable(&data, 83, &ckpt, &mut clapf_core::NoopObserver)
            .unwrap();
        assert!(report.resumed_from.unwrap() >= 1, "resumed mid-run");
        assert_eq!(report.steps, 4_000);
        for u in data.users() {
            for i in data.items() {
                assert_eq!(full.score(u, i).to_bits(), resumed.score(u, i).to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_panics() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(14)).unwrap();
        Mpr {
            config: MprConfig {
                lambda: 2.0,
                ..MprConfig::default()
            },
        }
        .fit(&data, &mut SmallRng::seed_from_u64(15));
    }
}
