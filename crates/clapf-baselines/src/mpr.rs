//! MPR — Multiple Pairwise Ranking (Yu et al., CIKM 2018).
//!
//! MPR relaxes BPR's single pairwise assumption with *multiple* pairwise
//! criteria over three item classes: observed `i`, "uncertain" `k` and
//! negative `j`, optimizing `ln σ(λ(f_ui − f_uk) + (1 − λ)(f_uk − f_uj))`.
//!
//! The original uses auxiliary view data for the uncertain class. The CLAPF
//! paper evaluates MPR on datasets with no view signal, so the uncertain
//! class must be derived from the data; we use the standard popularity
//! proxy: the most popular *unobserved* items are plausibly-seen-but-not-
//! chosen ("uncertain"), the long tail is treated as truly negative. The
//! uncertain pool is the most-popular half of the catalogue. This
//! substitution is recorded in DESIGN.md.

use clapf_core::objective::sigmoid;
use clapf_core::FactorRecommender;
use clapf_data::{Interactions, ItemId};
use clapf_mf::{Init, MfModel, SgdConfig};
use clapf_sampling::sample_observed_pair;
use rand::Rng;

/// MPR hyper-parameters (the paper searches λ ∈ {0.0, 0.1, …, 1.0}).
#[derive(Copy, Clone, Debug)]
pub struct MprConfig {
    /// Latent dimension.
    pub dim: usize,
    /// Tradeoff between the two pairwise criteria.
    pub lambda: f32,
    /// Learning rate and regularization.
    pub sgd: SgdConfig,
    /// Total SGD steps; `0` = automatic (`100·|P|`, capped at 8 M).
    pub iterations: usize,
    /// Parameter initialization.
    pub init: Init,
    /// Fraction of the catalogue (by popularity) forming the uncertain pool.
    pub uncertain_fraction: f64,
}

impl Default for MprConfig {
    fn default() -> Self {
        MprConfig {
            dim: 20,
            lambda: 0.4,
            sgd: SgdConfig::default(),
            iterations: 0,
            init: Init::default(),
            uncertain_fraction: 0.5,
        }
    }
}

/// The MPR trainer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Mpr {
    /// Hyper-parameters.
    pub config: MprConfig,
}

impl Mpr {
    /// Fits by SGD over (observed, uncertain, negative) triples.
    pub fn fit<R: Rng>(&self, data: &Interactions, rng: &mut R) -> FactorRecommender {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.lambda),
            "lambda must be in [0, 1]"
        );
        let mut model = MfModel::new(data.n_users(), data.n_items(), cfg.dim, cfg.init, rng);
        let iterations = if cfg.iterations > 0 {
            cfg.iterations
        } else {
            (100 * data.n_pairs()).clamp(1, 8_000_000)
        };

        // Popularity split of the catalogue into uncertain head / negative tail.
        let mut by_pop: Vec<ItemId> = (0..data.n_items()).map(ItemId).collect();
        let pop = data.item_popularity();
        by_pop.sort_unstable_by(|&a, &b| pop[b.index()].cmp(&pop[a.index()]).then(a.cmp(&b)));
        let head = ((data.n_items() as f64 * cfg.uncertain_fraction) as usize)
            .clamp(1, data.n_items() as usize - 1);
        let uncertain_pool = &by_pop[..head];
        let negative_pool = &by_pop[head..];

        let lambda = cfg.lambda;
        // R = λ f_ui + (1 − 2λ) f_uk − (1 − λ) f_uj
        let (ci, ck, cj) = (lambda, 1.0 - 2.0 * lambda, -(1.0 - lambda));
        let lr = cfg.sgd.learning_rate;
        let decay_u = lr * cfg.sgd.reg_user;
        let decay_v = lr * cfg.sgd.reg_item;
        let decay_b = lr * cfg.sgd.reg_bias;
        let mut u_old = vec![0.0f32; cfg.dim];
        let mut grad_u = vec![0.0f32; cfg.dim];

        let draw = |pool: &[ItemId], data: &Interactions, u, rng: &mut R| -> Option<ItemId> {
            for _ in 0..64 {
                let c = pool[rng.gen_range(0..pool.len())];
                if !data.contains(u, c) {
                    return Some(c);
                }
            }
            None
        };

        for _ in 0..iterations {
            let (u, i) = sample_observed_pair(data, rng);
            let Some(k) = draw(uncertain_pool, data, u, rng) else {
                continue;
            };
            let Some(j) = draw(negative_pool, data, u, rng) else {
                continue;
            };

            let r = lambda * (model.score(u, i) - model.score(u, k))
                + (1.0 - lambda) * (model.score(u, k) - model.score(u, j));
            let g = sigmoid(-r);

            model.copy_user_into(u, &mut u_old);
            grad_u.fill(0.0);
            for (t, c) in [(i, ci), (k, ck), (j, cj)] {
                if c != 0.0 {
                    for (slot, &w) in grad_u.iter_mut().zip(model.item(t)) {
                        *slot += c * w;
                    }
                }
            }
            model.sgd_user(u, lr * g, &grad_u, decay_u);
            for (t, c) in [(i, ci), (k, ck), (j, cj)] {
                model.sgd_item(t, lr * g * c, &u_old, decay_v);
                model.sgd_bias(t, lr, g * c, decay_b);
            }
        }

        FactorRecommender {
            model,
            label: format!("MPR(λ={:.1})", lambda),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_core::Recommender;
    use clapf_data::split::{split, SplitStrategy};
    use clapf_data::synthetic::{generate, WorldConfig};
    use clapf_data::UserId;
    use clapf_metrics::{evaluate_serial, EvalConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quick(lambda: f32) -> Mpr {
        Mpr {
            config: MprConfig {
                dim: 8,
                lambda,
                iterations: 12_000,
                ..MprConfig::default()
            },
        }
    }

    #[test]
    fn learns_better_than_chance() {
        let world = WorldConfig {
            n_users: 50,
            n_items: 80,
            target_pairs: 900,
            affinity_weight: 4.0,
            ..WorldConfig::default()
        };
        let data = generate(&world, &mut SmallRng::seed_from_u64(10)).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let s = split(&data, SplitStrategy::PerUser, 0.5, &mut rng).unwrap();
        let model = quick(0.4).fit(&s.train, &mut rng);
        let scorer = |u: UserId, out: &mut Vec<f32>| model.scores_into(u, out);
        let report = evaluate_serial(&scorer, &s.train, &s.test, &EvalConfig::at_5());
        assert!(report.auc > 0.6, "AUC = {}", report.auc);
    }

    #[test]
    fn label_includes_lambda() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(12)).unwrap();
        let model = Mpr {
            config: MprConfig {
                dim: 4,
                lambda: 0.3,
                iterations: 100,
                ..MprConfig::default()
            },
        }
        .fit(&data, &mut SmallRng::seed_from_u64(13));
        assert_eq!(model.name(), "MPR(λ=0.3)");
        assert!(!model.model.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_panics() {
        let data = generate(&WorldConfig::tiny(), &mut SmallRng::seed_from_u64(14)).unwrap();
        Mpr {
            config: MprConfig {
                lambda: 2.0,
                ..MprConfig::default()
            },
        }
        .fit(&data, &mut SmallRng::seed_from_u64(15));
    }
}
