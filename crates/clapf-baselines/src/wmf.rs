//! WMF — the pointwise baseline (Hu, Koren & Volinsky, ICDM 2008).
//!
//! Weighted matrix factorization over binary implicit data: every cell of
//! the user×item matrix carries a squared loss, observed cells with
//! confidence `1 + α` and unobserved cells with confidence 1 toward 0.
//! Trained by Alternating Least Squares with the classic
//! `VᵀV + Vᵀ(C − I)V` decomposition, so a sweep costs
//! `O(d²·|P| + d³·(n + m))` instead of `O(d²·n·m)`.

use clapf_core::FactorRecommender;
use clapf_data::{Interactions, ItemId, UserId};
use clapf_mf::linalg::SquareMatrix;
use clapf_mf::{Init, MfModel};
use rand::Rng;

/// WMF hyper-parameters (the paper searches α ∈ {10, 20, 40, 100},
/// d ∈ {10, 20}, reg ∈ {0.001, 0.01, 0.1}).
#[derive(Copy, Clone, Debug)]
pub struct WmfConfig {
    /// Latent dimension.
    pub dim: usize,
    /// Extra confidence of observed cells (`c_ui = 1 + alpha`).
    pub alpha: f64,
    /// Ridge regularization λ.
    pub reg: f64,
    /// Number of ALS sweeps (each sweep = users then items).
    pub sweeps: usize,
}

impl Default for WmfConfig {
    fn default() -> Self {
        WmfConfig {
            dim: 20,
            alpha: 40.0,
            reg: 0.01,
            sweeps: 10,
        }
    }
}

/// The WMF/ALS trainer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Wmf {
    /// Hyper-parameters.
    pub config: WmfConfig,
}

impl Wmf {
    /// Fits by ALS; deterministic given the RNG (used only for the
    /// initialization).
    pub fn fit<R: Rng>(&self, data: &Interactions, rng: &mut R) -> FactorRecommender {
        let cfg = &self.config;
        assert!(cfg.dim > 0, "dim must be positive");
        let mut model = MfModel::new(
            data.n_users(),
            data.n_items(),
            cfg.dim,
            Init::Gaussian { std: 0.1 },
            rng,
        );
        // WMF has no bias term; clear the random bias initialization so the
        // score is exactly U_u · V_i.
        for i in 0..data.n_items() {
            *model.bias_mut(ItemId(i)) = 0.0;
        }

        for _ in 0..cfg.sweeps {
            solve_side(&mut model, data, cfg, Side::Users);
            solve_side(&mut model, data, cfg, Side::Items);
        }

        FactorRecommender {
            model,
            label: "WMF".into(),
        }
    }
}

#[derive(Copy, Clone, PartialEq)]
enum Side {
    Users,
    Items,
}

/// One half-sweep: re-solves every row of one side against the fixed other
/// side.
fn solve_side(model: &mut MfModel, data: &Interactions, cfg: &WmfConfig, side: Side) {
    let d = cfg.dim;
    // Gram matrix of the fixed side: G = Σ_x f_x f_xᵀ (the "implicit zeros"
    // part of the normal equations).
    let (n_solve, n_fixed) = match side {
        Side::Users => (data.n_users() as usize, data.n_items() as usize),
        Side::Items => (data.n_items() as usize, data.n_users() as usize),
    };
    // Snapshot of the fixed side in f64 (it does not change within the
    // half-sweep, and the snapshot keeps the borrow checker happy while we
    // mutate the other side).
    let fixed: Vec<Vec<f64>> = (0..n_fixed)
        .map(|idx| {
            let row = match side {
                Side::Users => model.item(ItemId(idx as u32)),
                Side::Items => model.user(UserId(idx as u32)),
            };
            row.iter().map(|&x| x as f64).collect()
        })
        .collect();
    let mut gram = SquareMatrix::zeros(d);
    for row in &fixed {
        gram.add_outer(row, 1.0);
    }

    for s in 0..n_solve {
        let observed: Vec<usize> = match side {
            Side::Users => data
                .items_of(UserId(s as u32))
                .iter()
                .map(|i| i.index())
                .collect(),
            Side::Items => data
                .users_of(ItemId(s as u32))
                .iter()
                .map(|u| u.index())
                .collect(),
        };
        // A = G + α Σ_{observed} f fᵀ + λI ; b = (1 + α) Σ_{observed} f.
        let mut a = gram.clone();
        for i in 0..d {
            a[(i, i)] += cfg.reg;
        }
        let mut b = vec![0.0f64; d];
        for &x in &observed {
            let row = &fixed[x];
            a.add_outer(row, cfg.alpha);
            for (slot, v) in b.iter_mut().zip(row) {
                *slot += (1.0 + cfg.alpha) * v;
            }
        }
        a.cholesky_solve_into(&mut b)
            .expect("ridge term keeps the system positive definite");
        let target = match side {
            Side::Users => model.user_mut(UserId(s as u32)),
            Side::Items => model.item_mut(ItemId(s as u32)),
        };
        for (slot, v) in target.iter_mut().zip(&b) {
            *slot = *v as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_core::Recommender;
    use clapf_data::synthetic::{generate, WorldConfig};
    use clapf_data::InteractionsBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_block_structure() {
        // Two disjoint user/item blocks; WMF must score in-block items above
        // out-of-block items for held-in users.
        let mut b = InteractionsBuilder::new(6, 6);
        for u in 0..3u32 {
            for i in 0..3u32 {
                if (u, i) != (0, 2) {
                    b.push(UserId(u), ItemId(i)).unwrap();
                }
            }
        }
        for u in 3..6u32 {
            for i in 3..6u32 {
                b.push(UserId(u), ItemId(i)).unwrap();
            }
        }
        let data = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let model = Wmf {
            config: WmfConfig {
                dim: 4,
                sweeps: 15,
                ..WmfConfig::default()
            },
        }
        .fit(&data, &mut rng);
        // The held-out in-block cell beats every out-of-block cell.
        let held_out = model.score(UserId(0), ItemId(2));
        for i in 3..6u32 {
            assert!(
                held_out > model.score(UserId(0), ItemId(i)),
                "in-block {held_out} vs out-of-block {}",
                model.score(UserId(0), ItemId(i))
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = WorldConfig {
            n_users: 30,
            n_items: 40,
            target_pairs: 300,
            ..WorldConfig::default()
        };
        let data = generate(&cfg, &mut SmallRng::seed_from_u64(1)).unwrap();
        let fit = |seed| {
            Wmf {
                config: WmfConfig {
                    dim: 4,
                    sweeps: 3,
                    ..WmfConfig::default()
                },
            }
            .fit(&data, &mut SmallRng::seed_from_u64(seed))
        };
        let a = fit(5);
        let b = fit(5);
        assert_eq!(a.score(UserId(3), ItemId(7)), b.score(UserId(3), ItemId(7)));
    }

    #[test]
    fn label_is_wmf() {
        let mut b = InteractionsBuilder::new(2, 2);
        b.push(UserId(0), ItemId(0)).unwrap();
        let data = b.build().unwrap();
        let model = Wmf::default().fit(&data, &mut SmallRng::seed_from_u64(0));
        assert_eq!(model.name(), "WMF");
    }

    #[test]
    fn parameters_stay_finite() {
        let cfg = WorldConfig::tiny();
        let data = generate(&cfg, &mut SmallRng::seed_from_u64(2)).unwrap();
        let model = Wmf {
            config: WmfConfig {
                dim: 8,
                sweeps: 5,
                alpha: 100.0,
                reg: 0.001,
            },
        }
        .fit(&data, &mut SmallRng::seed_from_u64(9));
        assert!(!model.model.has_non_finite());
    }
}
