//! Shared [`TrainObserver`] plumbing for the SGD-trained baselines.
//!
//! BPR and MPR have no sampler-refresh cadence, so their serial loops are
//! chunked into synthetic epochs purely for observation: one epoch is one
//! pass over the observed pairs, widened so a run never reports more than
//! [`MAX_EPOCHS`] of them. Chunking a flat loop changes neither the step
//! order nor the RNG stream, so an observed baseline fit stays bit-identical
//! to the unobserved one (pinned by tests in `bpr.rs`/`mpr.rs`).

use clapf_mf::MfModel;
use clapf_telemetry::{EpochStats, TrainObserver};
use std::time::Duration;

/// Upper bound on reported epochs per fit; with the automatic `100·|P|`
/// step budget this lands exactly on one epoch per data pass.
pub(crate) const MAX_EPOCHS: usize = 100;

/// Steps per synthetic epoch for a baseline fit.
pub(crate) fn epoch_len(iterations: usize, n_pairs: usize) -> usize {
    n_pairs.max(iterations.div_ceil(MAX_EPOCHS)).max(1)
}

/// Serial per-step accounting, the single-threaded cousin of the CLAPF
/// trainer's worker-local tally. When `enabled` is false every record
/// collapses to one predictable dead branch per step.
#[derive(Default)]
pub(crate) struct StepTally {
    pub enabled: bool,
    /// Steps whose samplers produced a full comparison.
    pub sampled: u64,
    /// Steps abandoned because a sampler found no candidate.
    pub skipped: u64,
    /// Accumulated logistic-loss proxy `Σ −ln σ(R)`.
    pub loss: f64,
    /// Accumulated gradient scale `Σ σ(−R)`.
    pub gsum: f64,
}

impl StepTally {
    pub fn new(enabled: bool) -> Self {
        StepTally {
            enabled,
            ..StepTally::default()
        }
    }

    /// Drains the counts accumulated since the last take.
    pub fn take(&mut self) -> StepTally {
        std::mem::replace(self, StepTally::new(self.enabled))
    }
}

/// Builds one synthetic epoch's [`EpochStats`]. Timing is always present;
/// the model scan (norms, NaN detection) runs only when `model` is `Some`,
/// i.e. when an enabled observer asked to pay for it.
pub(crate) fn build_epoch_stats(
    epoch: usize,
    steps: usize,
    steps_total: usize,
    elapsed: Duration,
    tally: StepTally,
    model: Option<&MfModel>,
) -> EpochStats {
    let mut stats = EpochStats::timing_only(epoch, steps, steps_total, elapsed);
    if let Some(m) = model {
        let n = tally.sampled.max(1) as f64;
        stats.loss = tally.loss / n;
        stats.grad_scale = tally.gsum / n;
        stats.skipped = tally.skipped;
        stats.user_norm = m.mean_user_norm();
        stats.item_norm = m.mean_item_norm();
        stats.non_finite = m.has_non_finite();
    }
    stats
}

/// Dispatches one epoch to the observer and decides whether to keep going.
/// Returns `true` when the fit should abort at this epoch edge.
pub(crate) fn epoch_control(
    observer: &mut dyn TrainObserver,
    stats: &EpochStats,
    steps_done: usize,
) -> bool {
    let control = observer.on_epoch(stats);
    if stats.non_finite {
        observer.on_divergence(steps_done);
    }
    stats.non_finite || control == clapf_telemetry::Control::Abort
}
