//! Self-registration heartbeat: the replica half of the fleet's
//! lease-based membership (DESIGN.md §17).
//!
//! A replica started with a [`RegisterConfig`] announces itself to the
//! fleet router over `POST /fleet/register?name=…&addr=…` as soon as its
//! socket is bound, then keeps re-sending the same call on a jittered
//! interval. Each call renews the lease the router holds for this member
//! name; when heartbeats stop (crash, hang, partition) the lease expires
//! and the router evicts the slot from its ring without any supervisor
//! involvement. The replica never tracks lease state itself — the renewal
//! *is* the protocol, which is what makes re-admission after a partition
//! automatic: the next heartbeat through re-registers it.
//!
//! The send site is guarded by the `serve.register.send` failpoint so
//! chaos tests can blackhole heartbeats from a perfectly healthy replica —
//! the lease-expiry eviction path is then exercised without killing
//! anything.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::server::Shared;

/// How a replica registers itself with a fleet router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterConfig {
    /// Router address (`host:port`) answering `POST /fleet/register`.
    pub router: String,
    /// Stable member name. The router keys ring slots by name, so a
    /// replica that re-registers under the same name (after a restart or
    /// an expired lease) reclaims its old slot instead of growing the
    /// ring. Must be URL-safe (letters, digits, `-`, `_`, `.`).
    pub name: String,
    /// Heartbeat period; keep it comfortably below the router's lease TTL
    /// (the router defaults to 3s, the CLI heartbeats at 1s).
    pub interval: Duration,
}

/// Socket budget for one heartbeat call: connect, write, read.
const CALL_TIMEOUT: Duration = Duration::from_secs(2);
/// How often a sleeping heartbeat thread polls the shutdown flag.
const SLEEP_SLICE: Duration = Duration::from_millis(100);

/// The heartbeat loop `start()` spawns: register immediately, then renew
/// forever on a jittered interval until shutdown. Failures are counted,
/// never fatal — the router's sweep handles a member that stops renewing.
pub(crate) fn heartbeat_loop(shared: Arc<Shared>, config: RegisterConfig) {
    let advertised = shared.addr;
    let mut beat: u64 = fnv64(config.name.as_bytes());
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Failpoint: chaos tests blackhole heartbeats here. The replica
        // keeps serving traffic, but its lease silently expires at the
        // router — the partition-without-crash failure mode.
        if clapf_faults::check("serve.register.send").is_err() {
            shared.registry.counter("serve.register.blackholed").inc();
        } else {
            match send_registration(&config, advertised) {
                Ok(()) => shared.registry.counter("serve.register.sent").inc(),
                Err(_) => shared.registry.counter("serve.register.errors").inc(),
            }
        }
        beat = beat.wrapping_add(1);
        let deadline = Instant::now() + jittered(config.interval, beat);
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep(SLEEP_SLICE.min(deadline - now));
        }
    }
}

/// One `POST /fleet/register` call announcing `advertised` under the
/// configured member name.
fn send_registration(config: &RegisterConfig, advertised: SocketAddr) -> std::io::Result<()> {
    let path = format!(
        "/fleet/register?name={}&addr={}",
        config.name, advertised
    );
    one_shot_post(&config.router, &path)
}

/// A minimal one-shot HTTP POST: connect, send, require a 2xx status
/// line. `clapf-serve` cannot lean on `clapf-fleet`'s pooled client (the
/// dependency points the other way), and a heartbeat neither needs
/// keep-alive nor a parsed body.
fn one_shot_post(router: &str, path: &str) -> std::io::Result<()> {
    let addr = router
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "router unresolvable"))?;
    let mut stream = TcpStream::connect_timeout(&addr, CALL_TIMEOUT)?;
    stream.set_read_timeout(Some(CALL_TIMEOUT))?;
    stream.set_write_timeout(Some(CALL_TIMEOUT))?;
    stream.write_all(
        format!("POST {path} HTTP/1.1\r\nHost: {router}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    )?;
    let mut head = [0u8; 64];
    let mut got = 0;
    while got < head.len() {
        match stream.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                if head[..got].contains(&b'\n') {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let line = String::from_utf8_lossy(&head[..got]);
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if (200..300).contains(&status) {
        Ok(())
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("register rejected: {}", line.trim()),
        ))
    }
}

/// Deterministic ±20% jitter so a fleet of replicas started together does
/// not heartbeat in lockstep. Seeded from the member name and beat count —
/// no wall-clock entropy, so chaos runs replay identically.
fn jittered(base: Duration, salt: u64) -> Duration {
    let nanos = base.as_nanos() as u64;
    let band = nanos / 5; // 20% total width
    let offset = splitmix64(salt) % band.max(1);
    Duration::from_nanos(nanos - band / 2 + offset)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;

    /// A fake router: accepts one connection, records the request line,
    /// answers with the given status.
    fn fake_router(status: u16) -> (SocketAddr, std::sync::mpsc::Receiver<String>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut line = String::new();
            std::io::BufReader::new(&mut stream).read_line(&mut line).unwrap();
            let _ = tx.send(line);
            let _ = stream.write_all(
                format!("HTTP/1.1 {status} X\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            );
        });
        (addr, rx)
    }

    #[test]
    fn a_heartbeat_posts_name_and_addr_to_the_register_endpoint() {
        let (addr, rx) = fake_router(200);
        let config = RegisterConfig {
            router: addr.to_string(),
            name: "replica-7".into(),
            interval: Duration::from_secs(1),
        };
        let advertised: SocketAddr = "127.0.0.1:4321".parse().unwrap();
        send_registration(&config, advertised).unwrap();
        let line = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(
            line.starts_with("POST /fleet/register?name=replica-7&addr=127.0.0.1:4321 "),
            "unexpected request line: {line:?}"
        );
    }

    #[test]
    fn a_rejected_registration_is_an_error() {
        let (addr, _rx) = fake_router(400);
        let config = RegisterConfig {
            router: addr.to_string(),
            name: "r".into(),
            interval: Duration::from_secs(1),
        };
        let advertised: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(send_registration(&config, advertised).is_err());
    }

    #[test]
    fn jitter_stays_within_the_band_and_is_deterministic() {
        let base = Duration::from_millis(1000);
        for salt in 0..200 {
            let d = jittered(base, salt);
            assert!(d >= Duration::from_millis(900), "too short: {d:?}");
            assert!(d <= Duration::from_millis(1100), "too long: {d:?}");
            assert_eq!(d, jittered(base, salt), "same salt, same jitter");
        }
    }
}
