//! Per-connection state for the event-driven transport.
//!
//! A [`Conn`] owns one nonblocking socket and carries everything its state
//! machine needs between readiness events: an incremental parser
//! ([`crate::http::FeedParser`]) accumulating request bytes, an outgoing
//! byte buffer with a write cursor, and the timestamps the deadline sweeps
//! (read budget, write timeout, keep-alive idle) are checked against. The
//! transport decides *what* to do; this module only moves bytes.

use crate::batch::ScoreKey;
use crate::http::{FeedParser, Response};
use clapf_telemetry::Trace;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Result of flushing the outgoing buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FlushState {
    /// Everything buffered has been written to the socket.
    Flushed,
    /// The socket would block with bytes still queued; the transport must
    /// arm write interest and retry on the next writable event.
    Partial,
}

/// One live client connection.
pub(crate) struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Incremental request parser fed by `read_ready`.
    pub parser: FeedParser,
    /// Serialized responses not yet fully written.
    out: Vec<u8>,
    /// Bytes of `out` already written.
    written: usize,
    /// Close the socket once `out` drains and no response is pending.
    pub close_after_flush: bool,
    /// The score-queue key this connection is waiting on, if any. At most
    /// one request per connection is in the scorer at a time; pipelined
    /// requests behind it stay buffered in the parser.
    pub awaiting: Option<ScoreKey>,
    /// Monotonically increasing connection serial. Slab tokens are reused;
    /// (token, serial) is the identity score-queue waiters are keyed by, so
    /// a completion can never be delivered to a *successor* connection that
    /// happens to occupy the same slab slot.
    pub serial: u64,
    /// Last time any request byte arrived or a response was queued.
    pub last_active: Instant,
    /// When the first byte of the currently-incomplete request arrived;
    /// the read-budget sweep rejects requests older than `read_cap`.
    pub request_started: Option<Instant>,
    /// When the current write backlog first failed to flush; the write
    /// timeout sweep drops peers that stop reading.
    pub write_started: Option<Instant>,
    /// Whether write interest is currently armed in the poller.
    pub wants_write: bool,
    /// The sampled trace of the response currently being flushed, if any;
    /// finished (with its write span) when the outgoing buffer drains.
    pub trace: Option<Trace>,
}

impl Conn {
    /// Wraps an accepted stream, switching it to nonblocking mode.
    pub fn new(stream: TcpStream, serial: u64) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // One small write per response; without NODELAY, Nagle + delayed
        // ACK costs tens of milliseconds per keep-alive round trip.
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            parser: FeedParser::new(),
            out: Vec::new(),
            written: 0,
            close_after_flush: false,
            awaiting: None,
            serial,
            last_active: Instant::now(),
            request_started: None,
            write_started: None,
            wants_write: false,
            trace: None,
        })
    }

    /// Drains the socket into the parser until it would block. Returns
    /// `Ok(true)` when the peer closed its write side (EOF seen).
    pub fn read_ready(&mut self, scratch: &mut [u8]) -> std::io::Result<bool> {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.parser.close();
                    return Ok(true);
                }
                Ok(n) => {
                    self.parser.feed(&scratch[..n]);
                    self.last_active = Instant::now();
                    if self.request_started.is_none() {
                        self.request_started = Some(self.last_active);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Serializes `resp` onto the outgoing buffer. `keep_alive: false`
    /// also marks the connection for close once the buffer drains.
    pub fn push_response(&mut self, resp: &Response, keep_alive: bool) {
        // Writing into a Vec cannot fail.
        let _ = resp.write_to(&mut self.out, keep_alive);
        if !keep_alive {
            self.close_after_flush = true;
        }
        self.last_active = Instant::now();
    }

    /// Writes as much of the outgoing buffer as the socket accepts.
    pub fn flush(&mut self) -> std::io::Result<FlushState> {
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.write_started.is_none() {
                        self.write_started = Some(Instant::now());
                    }
                    return Ok(FlushState::Partial);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.written = 0;
        self.write_started = None;
        Ok(FlushState::Flushed)
    }

    /// Whether response bytes are still queued for this socket.
    pub fn has_backlog(&self) -> bool {
        self.written < self.out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Feed;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reads_feed_the_parser_and_eof_is_reported() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 1).unwrap();
        let mut scratch = [0u8; 4096];

        client.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        // Wait for delivery, then drain: not EOF, request incomplete.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!conn.read_ready(&mut scratch).unwrap());
        assert!(matches!(conn.parser.next_request(), Feed::NeedMore));
        assert!(conn.request_started.is_some());

        client.write_all(b"\r\n").unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(conn.read_ready(&mut scratch).unwrap(), "EOF not seen");
        match conn.parser.next_request() {
            Feed::Request(req) => assert_eq!(req.path, "/healthz"),
            other => panic!("expected a request, got {other:?}"),
        }
        assert!(matches!(conn.parser.next_request(), Feed::Closed));
    }

    #[test]
    fn responses_flush_and_mark_close() {
        let (client, server) = pair();
        let mut conn = Conn::new(server, 1).unwrap();
        conn.push_response(&Response::json(200, "{}".into()), false);
        assert!(conn.close_after_flush);
        assert!(conn.has_backlog());
        assert_eq!(conn.flush().unwrap(), FlushState::Flushed);
        assert!(!conn.has_backlog());
        drop(conn); // FIN: lets the client's read_to_end terminate

        let mut client = client;
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        let text = String::from_utf8(got).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
    }
}
