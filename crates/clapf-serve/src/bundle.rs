//! Saved model bundles: the fitted factors plus the raw-id mapping, as one
//! JSON document.
//!
//! This module moved here from `clapf-cli` when the serving layer grew: a
//! bundle is the unit of deployment (`clapf fit --save` writes one,
//! `clapf serve` hot-swaps them), so it lives with the server. Loading
//! returns typed [`BundleError`]s rather than panicking — the hot-swap
//! watcher must be able to reject a truncated or corrupt bundle and keep
//! serving the previous model.

use clapf_data::loader::IdMap;
use clapf_data::{Interactions, ItemId, UserId};
use clapf_metrics::top_k_for_user;
use clapf_mf::MfModel;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Why a bundle failed to load. The serving layer maps these onto "reject
/// the reload, keep the live model" — none of them are fatal to a running
/// server.
#[derive(Debug)]
pub enum BundleError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The bytes were read but are not a valid bundle document (truncated
    /// write, wrong file, JSON corruption).
    Parse(String),
    /// The document parsed but its contents are inconsistent (factor block
    /// sizes disagree with the claimed dimensions, training pairs out of
    /// range, non-finite parameters).
    Invalid(String),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle I/O: {e}"),
            BundleError::Parse(e) => write!(f, "bundle parse: {e}"),
            BundleError::Invalid(e) => write!(f, "bundle invalid: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// Stable 64-bit FNV-1a hash of `bytes` — the bundle **fingerprint** the
/// fleet rollout protocol compares across replicas. Hashing the raw file
/// bytes (not the parsed struct) makes the fingerprint sensitive to any
/// re-serialization drift: two replicas agree iff they loaded identical
/// files.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything recommendation serving needs: the factors, how raw ids map to
/// dense ids, which items each user trained on (to exclude them), and a
/// human-readable description of the training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Description, e.g. `"CLAPF(λ=0.3)-MAP, d=20, 692100 steps"`.
    pub description: String,
    /// Fitted factors.
    pub model: MfModel,
    /// Raw ↔ dense id mapping of the training file.
    pub ids: IdMap,
    /// Dense training pairs (`user, item`), used to exclude seen items.
    pub train_pairs: Vec<(u32, u32)>,
    /// Final telemetry-registry snapshot of the training run (rendered
    /// JSON), when the fit was traced with `--metrics-out`. Absent in
    /// bundles from untraced runs and from older versions of this tool.
    pub metrics: Option<String>,
}

impl ModelBundle {
    /// Assembles a bundle from a fit.
    pub fn new(
        description: String,
        model: MfModel,
        ids: IdMap,
        train: &Interactions,
    ) -> Self {
        ModelBundle {
            description,
            model,
            ids,
            train_pairs: train.pairs().map(|(u, i)| (u.0, i.0)).collect(),
            metrics: None,
        }
    }

    /// Attaches a rendered metrics snapshot to the bundle.
    pub fn with_metrics(mut self, metrics: Option<String>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Serializes to JSON at `path`, **atomically**: write to `<path>.tmp`,
    /// `fsync`, rename over `path`, `fsync` the directory. A crash (or an
    /// injected fault) at any instant leaves either the previous bundle or
    /// the new one on disk — never a torn file a watcher could try to serve.
    ///
    /// Failpoints: `bundle.save.write`, `bundle.save.sync`,
    /// `bundle.save.rename`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let body = serde_json::to_string(self).expect("bundle serializes");
        let tmp = std::path::PathBuf::from(format!("{}.tmp", path.display()));
        let result = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            clapf_faults::write_all("bundle.save.write", &mut f, body.as_bytes())?;
            clapf_faults::check("bundle.save.sync")?;
            f.sync_all()?;
            drop(f);
            clapf_faults::check("bundle.save.rename")?;
            std::fs::rename(&tmp, path)?;
            // Persist the rename itself; best-effort (the data is durable).
            if let Some(dir) = path.parent() {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })();
        if result.is_err() {
            // A failed save must not leave `.tmp` debris behind.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads **and validates** a bundle from `path`.
    ///
    /// Every failure mode is a typed [`BundleError`], never a panic: a
    /// half-written file fails as [`BundleError::Parse`], a parseable file
    /// with inconsistent contents as [`BundleError::Invalid`]. The validated
    /// invariants are exactly the ones the accessors below rely on, so a
    /// loaded bundle cannot panic later.
    ///
    /// Failpoint: `bundle.load.read` (I/O errors at read time).
    pub fn load(path: &Path) -> Result<Self, BundleError> {
        Self::load_fingerprinted(path).map(|(b, _)| b)
    }

    /// [`load`](Self::load), also returning the [`fingerprint64`] of the
    /// raw file bytes — the identity the fleet rollout protocol verifies
    /// before flipping generations across replicas.
    pub fn load_fingerprinted(path: &Path) -> Result<(Self, u64), BundleError> {
        clapf_faults::check("bundle.load.read").map_err(BundleError::Io)?;
        let bytes = std::fs::read(path).map_err(BundleError::Io)?;
        let fingerprint = fingerprint64(&bytes);
        let body = String::from_utf8(bytes)
            .map_err(|_| BundleError::Parse("bundle is not valid UTF-8".into()))?;
        let bundle: ModelBundle =
            serde_json::from_str(&body).map_err(|e| BundleError::Parse(e.to_string()))?;
        bundle.validate()?;
        Ok((bundle, fingerprint))
    }

    /// Checks internal consistency; see [`ModelBundle::load`].
    pub fn validate(&self) -> Result<(), BundleError> {
        self.model.validate().map_err(BundleError::Invalid)?;
        let (nu, ni) = (self.model.n_users(), self.model.n_items());
        for &(u, i) in &self.train_pairs {
            if u >= nu || i >= ni {
                return Err(BundleError::Invalid(format!(
                    "train pair ({u}, {i}) out of range for {nu} users × {ni} items"
                )));
            }
        }
        if self.train_pairs.is_empty() {
            return Err(BundleError::Invalid("bundle has no training pairs".into()));
        }
        if self.ids.n_users() != nu || self.ids.n_items() != ni {
            return Err(BundleError::Invalid(format!(
                "id map covers {} users × {} items but the model has {nu} × {ni}",
                self.ids.n_users(),
                self.ids.n_items()
            )));
        }
        Ok(())
    }

    /// Rebuilds the training interactions (for exclusion at recommend time).
    /// Cannot fail on a [`load`](ModelBundle::load)-validated bundle.
    pub fn train_interactions(&self) -> Interactions {
        let mut b = clapf_data::InteractionsBuilder::new(
            self.model.n_users(),
            self.model.n_items(),
        );
        for &(u, i) in &self.train_pairs {
            b.push(UserId(u), ItemId(i)).expect("bundle pairs validated in range");
        }
        b.build().expect("bundle has training pairs")
    }

    /// Top-k raw item ids for a raw user id, excluding trained items.
    /// One-shot convenience (rebuilds the training set per call); the
    /// server keeps a prebuilt [`ServingModel`](crate::ServingModel)
    /// instead.
    pub fn recommend_raw(&self, raw_user: &str, k: usize) -> Result<Vec<String>, String> {
        let u = self
            .ids
            .dense_user(raw_user)
            .ok_or_else(|| format!("user {raw_user:?} not present in the training data"))?;
        let train = self.train_interactions();
        let ranked = top_k_for_user(&self.model, &train, u, k);
        Ok(ranked
            .items
            .iter()
            .map(|&i| {
                self.ids
                    .raw_item(i)
                    .unwrap_or("<unknown>")
                    .to_string()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_data::loader::{load_ratings_reader, Separator};
    use clapf_mf::Init;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bundle() -> ModelBundle {
        let csv = "u1,a,5\nu1,b,5\nu2,b,4\nu2,c,5\n";
        let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = MfModel::new(
            loaded.interactions.n_users(),
            loaded.interactions.n_items(),
            2,
            Init::Zeros,
            &mut rng,
        );
        // Deterministic scores: item "c" (dense 2) best, then "b", then "a".
        for (idx, bias) in [(0u32, 0.1f32), (1, 0.5), (2, 0.9)] {
            *model.bias_mut(ItemId(idx)) = bias;
        }
        ModelBundle::new(
            "test".into(),
            model,
            loaded.ids,
            &loaded.interactions,
        )
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("clapf-serve-bundle-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let b = bundle();
        let dir = temp_dir("roundtrip");
        let path = dir.join("m.json");
        b.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.description, "test");
        assert_eq!(loaded.train_pairs, b.train_pairs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bundles_without_metrics_field_still_load() {
        // Bundles written before the telemetry layer have no `metrics`
        // key; loading one must yield `None`, not an error.
        let b = bundle().with_metrics(Some("{}".into()));
        let text = serde_json::to_string(&b).unwrap();
        let mut v: serde::Value = serde_json::from_str(&text).unwrap();
        if let serde::Value::Map(fields) = &mut v {
            fields.retain(|(k, _)| k != "metrics");
        }
        let stripped = serde_json::to_string(&v).unwrap();
        let loaded: ModelBundle = serde_json::from_str(&stripped).unwrap();
        assert_eq!(loaded.metrics, None);
    }

    #[test]
    fn interrupted_save_leaves_the_previous_bundle_intact() {
        // The atomic-save contract: a save that dies at any stage (torn
        // write, failed fsync, failed rename) leaves the previous bundle
        // loadable and no `.tmp` debris.
        let _guard = clapf_faults::exclusive();
        let b = bundle();
        let dir = temp_dir("atomic");
        let path = dir.join("m.json");
        b.save(&path).unwrap();

        let mut updated = bundle();
        updated.description = "updated".into();
        for (point, fault) in [
            ("bundle.save.write", clapf_faults::Fault::Torn { keep: 32 }),
            ("bundle.save.sync", clapf_faults::Fault::Io),
            ("bundle.save.rename", clapf_faults::Fault::Io),
        ] {
            clapf_faults::arm(point, fault);
            assert!(updated.save(&path).is_err(), "{point} should fail save");
            assert!(clapf_faults::hits(point) >= 1);
            clapf_faults::disarm(point);
            let survivor = ModelBundle::load(&path).expect("old bundle survives");
            assert_eq!(survivor.description, "test", "{point} tore the bundle");
            assert!(
                !std::path::PathBuf::from(format!("{}.tmp", path.display())).exists(),
                "{point} left tmp debris"
            );
        }
        updated.save(&path).unwrap();
        assert_eq!(ModelBundle::load(&path).unwrap().description, "updated");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_read_failpoint_is_an_io_error() {
        let _guard = clapf_faults::exclusive();
        let b = bundle();
        let dir = temp_dir("load-fault");
        let path = dir.join("m.json");
        b.save(&path).unwrap();
        clapf_faults::arm_nth("bundle.load.read", clapf_faults::Fault::Io, 0, Some(1));
        let err = ModelBundle::load(&path).unwrap_err();
        assert!(matches!(err, BundleError::Io(_)), "{err}");
        // The fault was one-shot: the next load succeeds.
        assert!(ModelBundle::load(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_file_bytes_not_identity() {
        let b = bundle();
        let dir = temp_dir("fingerprint");
        let (p1, p2) = (dir.join("a.json"), dir.join("b.json"));
        b.save(&p1).unwrap();
        b.save(&p2).unwrap();
        let (_, f1) = ModelBundle::load_fingerprinted(&p1).unwrap();
        let (_, f2) = ModelBundle::load_fingerprinted(&p2).unwrap();
        assert_eq!(f1, f2, "identical bytes must fingerprint identically");

        let mut changed = bundle();
        changed.description = "changed".into();
        changed.save(&p2).unwrap();
        let (_, f3) = ModelBundle::load_fingerprinted(&p2).unwrap();
        assert_ne!(f1, f3, "different bytes must fingerprint differently");
        assert_eq!(f1, fingerprint64(&std::fs::read(&p1).unwrap()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommends_unseen_items_by_score() {
        let b = bundle();
        // u1 trained on {a, b}; best unseen is c.
        let recs = b.recommend_raw("u1", 2).unwrap();
        assert_eq!(recs, vec!["c".to_string()]);
        // u2 trained on {b, c}; only a remains.
        let recs = b.recommend_raw("u2", 5).unwrap();
        assert_eq!(recs, vec!["a".to_string()]);
    }

    #[test]
    fn unknown_user_is_an_error() {
        let b = bundle();
        let err = b.recommend_raw("nobody", 3).unwrap_err();
        assert!(err.contains("nobody"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ModelBundle::load(Path::new("/nonexistent/bundle.json")).unwrap_err();
        assert!(matches!(err, BundleError::Io(_)), "{err}");
    }

    #[test]
    fn truncated_file_is_parse_error_not_panic() {
        let b = bundle();
        let dir = temp_dir("truncated");
        let path = dir.join("m.json");
        b.save(&path).unwrap();
        // Simulate a half-written file: chop the document in the middle.
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();
        let err = ModelBundle::load(&path).unwrap_err();
        assert!(matches!(err, BundleError::Parse(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_bytes_are_parse_error() {
        let dir = temp_dir("garbage");
        let path = dir.join("m.json");
        std::fs::write(&path, b"\x00\xffnot json at all").unwrap();
        let err = ModelBundle::load(&path).unwrap_err();
        assert!(matches!(err, BundleError::Parse(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_pairs_are_invalid() {
        let mut b = bundle();
        b.train_pairs.push((999, 0));
        let err = b.validate().unwrap_err();
        assert!(matches!(err, BundleError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn corrupt_model_block_is_invalid_on_load() {
        // Parseable JSON whose factor block disagrees with the claimed
        // shape: `load` must reject it as Invalid (the serde layer cannot
        // catch this — only validation can).
        let b = bundle();
        let dir = temp_dir("invalid");
        let path = dir.join("m.json");
        b.save(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        // The test model has 2 users; claim 3 without adding factors.
        let corrupted = body.replace("\"n_users\":2", "\"n_users\":3");
        assert_ne!(corrupted, body, "fixture must contain the n_users field");
        std::fs::write(&path, corrupted).unwrap();
        let err = ModelBundle::load(&path).unwrap_err();
        assert!(matches!(err, BundleError::Invalid(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
