//! The server proper: transports, routing, reload, shutdown.
//!
//! Two transports share all routing/model/cache state:
//!
//! * [`Transport::Threaded`] — the original blocking design: one accept
//!   thread feeding a bounded mpsc queue, `workers` threads each running a
//!   keep-alive request loop. Simple, and the right shape for a handful of
//!   long-lived clients.
//! * [`Transport::EventLoop`] — one readiness-loop thread owning every
//!   nonblocking socket (epoll on Linux, portable scan fallback elsewhere;
//!   see [`crate::poller`]), with `/recommend` cache misses scored by a
//!   pool of `workers` scorer threads in cross-request micro-batches (see
//!   [`crate::batch`]). This is the shape for thousands of concurrent
//!   keep-alive connections and for uncached throughput: concurrent misses
//!   amortize one item-table sweep across up to `batch_max` users.
//!
//! Shutdown is cooperative and std-only in both: a flag flips, a loopback
//! connection wakes the blocked `accept` (threaded) or the poller wait
//! (event loop — the listener becoming readable is itself an event), and
//! in-flight work drains before the threads exit.

use crate::batch::Batcher;
use crate::cache::{CacheOutcome, TopKCache};
use crate::http::{parse_request_deadline_timed, Method, ParseError, Request, Response};
use crate::model::{ModelSlot, ServingModel};
use crate::trace::stages;
use crate::{bundle::BundleError, transport::EventOpts};
use clapf_telemetry::{Histogram, JsonValue, Registry, Trace, TraceId, Tracer};
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Which connection-handling machinery a server runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Transport {
    /// Blocking sockets, one worker thread per in-flight connection.
    #[default]
    Threaded,
    /// One nonblocking readiness loop plus a micro-batching scorer pool.
    EventLoop,
}

impl Transport {
    /// The transport the CLI defaults to on this platform: the event loop
    /// where the epoll backend exists (Linux), threaded elsewhere (the
    /// scan-poller fallback works everywhere but burns a little CPU).
    pub fn preferred() -> Transport {
        if cfg!(target_os = "linux") {
            Transport::EventLoop
        } else {
            Transport::Threaded
        }
    }
}

/// How a server is sized and where it listens.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads: connection handlers (threaded) or batch scorers
    /// (event loop).
    pub workers: usize,
    /// Total top-k cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache lock shards.
    pub cache_shards: usize,
    /// `k` used when the request has no `?k=` parameter.
    pub default_k: usize,
    /// Largest accepted `k` (caps per-request work).
    pub max_k: usize,
    /// Poll interval for the bundle-file watcher; `None` disables watching
    /// (reloads then only happen via `POST /reload`).
    pub watch_poll: Option<Duration>,
    /// Most accepted connections allowed to wait for a worker; the next one
    /// is **shed** — answered `503` with `Retry-After` and closed — instead
    /// of queueing unboundedly (`0` resolves to `64`). Threaded transport.
    pub queue_bound: usize,
    /// A queued connection older than this when a worker dequeues it is
    /// shed rather than served: under sustained overload its client has
    /// likely timed out already, and serving it starves fresher requests.
    pub queue_deadline: Duration,
    /// Total wall-clock budget for reading one request (line + headers +
    /// body), measured from its first byte. Defeats slow-loris clients;
    /// idle keep-alive connections are unaffected.
    pub read_cap: Duration,
    /// Socket write timeout for responses (a peer that stops reading
    /// cannot pin a worker forever).
    pub write_timeout: Duration,
    /// Which transport serves connections.
    pub transport: Transport,
    /// Most `/recommend` requests scored in one batch (event loop).
    pub batch_max: usize,
    /// Longest a scorer holds an underfull batch open waiting for more
    /// requests (event loop). Bounds the light-load latency premium.
    pub batch_hold: Duration,
    /// Most simultaneously open connections (event loop); beyond it new
    /// accepts are shed with a 503.
    pub max_conns: usize,
    /// Most queued score jobs (event loop); beyond it misses are shed with
    /// a 503 + `Retry-After` while the connection stays open.
    pub pending_bound: usize,
    /// Force the portable scan poller even where epoll is available —
    /// exercises the fallback path in tests.
    pub force_scan_poller: bool,
    /// Trace one in this many requests (0 disables tracing). Sampled
    /// requests record per-stage spans, exposed at `GET /debug/traces`,
    /// `GET /debug/slow`, and as exemplars on `/metrics` latency buckets.
    pub trace_sample: u64,
    /// When set, a heartbeat thread registers this replica with a fleet
    /// router and keeps renewing its membership lease (see
    /// [`RegisterConfig`](crate::RegisterConfig)). `None` serves
    /// standalone.
    pub register: Option<crate::register::RegisterConfig>,
    /// Expose `POST /fault/arm` and `POST /fault/reset` so an external
    /// chaos driver can arm this process's failpoints over HTTP. Off by
    /// default — only test harnesses should ever turn this on.
    pub fault_control: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            cache_capacity: 4096,
            cache_shards: 8,
            default_k: 10,
            max_k: 1000,
            watch_poll: None,
            queue_bound: 64,
            queue_deadline: Duration::from_secs(5),
            read_cap: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            transport: Transport::Threaded,
            batch_max: 32,
            batch_hold: Duration::from_micros(100),
            max_conns: 10_000,
            pending_bound: 4096,
            force_scan_poller: false,
            trace_sample: 0,
            register: None,
            fault_control: false,
        }
    }
}

/// Why the server failed to start or reload.
#[derive(Debug)]
pub enum ServeError {
    /// The initial bundle could not be loaded.
    Bundle(BundleError),
    /// Binding or socket configuration failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bundle(e) => write!(f, "loading bundle: {e}"),
            ServeError::Io(e) => write!(f, "socket: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How often a blocked connection read wakes to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(250);
/// Idle keep-alive connections are closed after this long without a request.
pub(crate) const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(30);

/// State shared by every thread of one server.
pub(crate) struct Shared {
    pub(crate) slot: ModelSlot,
    pub(crate) cache: TopKCache,
    pub(crate) registry: Arc<Registry>,
    pub(crate) bundle_path: PathBuf,
    /// A bundle staged by `POST /bundle/stage` (loaded and validated off to
    /// the side from `<bundle_path>.next`), waiting for the fleet-wide
    /// commit. Swapping it in is a pointer flip, so a two-phase rollout's
    /// commit step is near-instant on every replica.
    staged: Mutex<Option<ServingModel>>,
    /// Serializes reloads (watcher vs. `POST /reload`).
    reload_lock: Mutex<()>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) addr: SocketAddr,
    default_k: usize,
    max_k: usize,
    queue_deadline: Duration,
    pub(crate) read_cap: Duration,
    pub(crate) write_timeout: Duration,
    /// Head-based request sampler; finished traces feed `/debug/traces`
    /// (recent ring), `/debug/slow` (slowest-K log) and metric exemplars.
    pub(crate) tracer: Tracer,
    /// Whether `POST /fault/arm` / `POST /fault/reset` are routable.
    fault_control: bool,
}

fn latency_histogram() -> Histogram {
    // 0.01 ms … ~160 ms in ×2 steps, plus the overflow bucket.
    Histogram::exponential(0.01, 2.0, 15)
}

impl Shared {
    pub(crate) fn observe(&self, endpoint: &str, started: Instant) {
        self.observe_traced(endpoint, started, None);
    }

    /// [`observe`](Self::observe), attaching the request's trace id to the
    /// latency bucket it lands in (rendered as an OpenMetrics exemplar) so
    /// a spike on `/metrics` links to a full per-stage breakdown.
    pub(crate) fn observe_traced(&self, endpoint: &str, started: Instant, trace: Option<TraceId>) {
        self.registry
            .counter(&format!("serve.{endpoint}.requests"))
            .inc();
        let h = self
            .registry
            .histogram(&format!("serve.{endpoint}.latency_ms"), latency_histogram);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        match trace {
            Some(id) => h.record_exemplar(ms, id.get()),
            None => h.record(ms),
        }
    }

    /// Begins a trace for one request: adopts the upstream id from an
    /// `X-Clapf-Trace` header when present (the router already made the
    /// sampling decision for this request — both sides' `/debug/traces`
    /// then share the id), falls back to head-based sampling otherwise.
    /// A propagated id never forces tracing on a server that has it off.
    pub(crate) fn begin_trace(&self, parent: Option<u64>, first_byte: Instant) -> Option<Trace> {
        match parent {
            Some(raw) if self.tracer.enabled() => {
                Some(Trace::begin_at(TraceId::from_raw(raw), first_byte))
            }
            _ => self.tracer.begin_at(first_byte),
        }
    }

    /// `<bundle_path>.next` — where a fleet rollout parks the candidate
    /// bundle file before `POST /bundle/stage`.
    pub(crate) fn next_path(&self) -> PathBuf {
        let mut os = self.bundle_path.clone().into_os_string();
        os.push(".next");
        PathBuf::from(os)
    }

    /// `<bundle_path>.prev` — the hard link to the previous bundle a commit
    /// leaves behind so an abort can restore it.
    pub(crate) fn prev_path(&self) -> PathBuf {
        let mut os = self.bundle_path.clone().into_os_string();
        os.push(".prev");
        PathBuf::from(os)
    }

    /// Loads and validates `<bundle_path>.next` off to the side and parks
    /// it in the staged slot (replacing any earlier staged bundle). The
    /// live model is untouched. Returns the staged fingerprint.
    fn stage_next(&self) -> Result<u64, BundleError> {
        clapf_faults::check("serve.bundle.stage").map_err(BundleError::Io)?;
        let model = ServingModel::load(&self.next_path(), 0)?;
        let fp = model.fingerprint;
        *self.staged.lock().expect("staged slot poisoned") = Some(model);
        self.registry.counter("serve.bundle.staged").inc();
        Ok(fp)
    }

    /// Commits the staged bundle: verifies its fingerprint matches `want`
    /// (the rollout driver's torn-rollout guard), makes the flip durable on
    /// disk, then publishes the model. Returns `(generation, fingerprint)`;
    /// errors carry the HTTP status to answer with (`409` when there is
    /// nothing matching to commit, `500` when disk I/O failed — the staged
    /// bundle is kept so the driver can retry or abort).
    fn commit_staged(&self, want: u64) -> Result<(u64, u64), (u16, String)> {
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        let mut staged = self.staged.lock().expect("staged slot poisoned");
        match staged.as_ref() {
            None => return Err((409, "no staged bundle to commit".into())),
            Some(m) if m.fingerprint != want => {
                return Err((
                    409,
                    format!(
                        "staged fingerprint {:016x} does not match requested {:016x}",
                        m.fingerprint, want
                    ),
                ))
            }
            Some(_) => {}
        }
        if let Err(e) = clapf_faults::check("serve.bundle.commit") {
            return Err((500, format!("commit fault: {e}")));
        }
        // Durability, in crash-safe order: keep the old bundle reachable at
        // `.prev` (hard link — no copy), then rename `.next` over the live
        // path. There is no instant without a valid bundle file on disk,
        // and `.prev` is exactly what an abort restores.
        let prev = self.prev_path();
        let _ = std::fs::remove_file(&prev);
        if let Err(e) = std::fs::hard_link(&self.bundle_path, &prev) {
            return Err((500, format!("preserving previous bundle: {e}")));
        }
        if let Err(e) = std::fs::rename(self.next_path(), &self.bundle_path) {
            return Err((500, format!("installing staged bundle: {e}")));
        }
        let mut model = staged.take().expect("staged presence checked above");
        let gen = self.cache.generation() + 1;
        model.generation = gen;
        let fp = model.fingerprint;
        // Same publish order as reload(): model first, then cache bump.
        self.slot.swap(model);
        self.cache.bump_generation();
        self.registry.counter("serve.bundle.committed").inc();
        Ok((gen, fp))
    }

    /// Aborts a rollout of the bundle fingerprinted `bad`: drops any staged
    /// bundle and deletes `<bundle_path>.next`. If this replica already
    /// committed `bad` (split-brain mid-rollout), restores `.prev` over the
    /// live path and reloads — the previous bundle comes back under a fresh
    /// generation, so the cache stays coherent. Returns the live
    /// `(generation, fingerprint)` after the abort.
    fn abort_staged(&self, bad: u64) -> Result<(u64, u64), (u16, String)> {
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        self.staged.lock().expect("staged slot poisoned").take();
        let _ = std::fs::remove_file(self.next_path());
        let live = self.slot.current();
        if live.fingerprint == bad {
            if let Err(e) = std::fs::rename(self.prev_path(), &self.bundle_path) {
                return Err((500, format!("restoring previous bundle: {e}")));
            }
            if let Err(e) = self.reload_locked() {
                return Err((500, format!("reloading previous bundle: {e}")));
            }
        }
        self.registry.counter("serve.bundle.aborted").inc();
        let live = self.slot.current();
        Ok((live.generation, live.fingerprint))
    }

    /// Loads the bundle from disk and publishes it; the live model is
    /// untouched on failure. Returns the new generation.
    fn reload(&self) -> Result<u64, BundleError> {
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        self.reload_locked()
    }

    /// [`reload`](Self::reload) with the reload lock already held.
    fn reload_locked(&self) -> Result<u64, BundleError> {
        let next_gen = self.cache.generation() + 1;
        match ServingModel::load(&self.bundle_path, next_gen) {
            Ok(model) => {
                // Order matters: publish the model first, then invalidate
                // the cache. A handler between the two steps pins the new
                // model and misses (its generation is ahead of the cache's),
                // which costs one recompute — never a stale or torn answer.
                self.slot.swap(model);
                self.cache.bump_generation();
                self.registry.counter("serve.reload.ok").inc();
                Ok(next_gen)
            }
            Err(e) => {
                self.registry.counter("serve.reload.errors").inc();
                Err(e)
            }
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the transport out of its blocking accept / poller wait: a
        // connection attempt makes the listener readable in both designs.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`shutdown`](ServerHandle::shutdown) or [`wait`](ServerHandle::wait).
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current model generation.
    pub fn generation(&self) -> u64 {
        self.shared.slot.current().generation
    }

    /// Triggers a reload from the bundle path, as `POST /reload` would.
    pub fn reload(&self) -> Result<u64, BundleError> {
        self.shared.reload()
    }

    /// Initiates a graceful shutdown and blocks until every worker has
    /// drained its in-flight connection.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Blocks until something else (e.g. `POST /shutdown`) stops the
    /// server, then drains exactly like [`shutdown`](ServerHandle::shutdown).
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Loads the bundle at `bundle_path` and starts serving it per `config`.
/// Metrics land in `registry` (exposed at `GET /metrics`).
pub fn start(
    bundle_path: PathBuf,
    config: ServeConfig,
    registry: Arc<Registry>,
) -> Result<ServerHandle, ServeError> {
    let model = ServingModel::load(&bundle_path, 0).map_err(ServeError::Bundle)?;
    let listener = TcpListener::bind(&config.addr).map_err(ServeError::Io)?;
    let addr = listener.local_addr().map_err(ServeError::Io)?;

    let shared = Arc::new(Shared {
        slot: ModelSlot::new(model),
        cache: TopKCache::new(config.cache_capacity, config.cache_shards),
        registry,
        bundle_path,
        staged: Mutex::new(None),
        reload_lock: Mutex::new(()),
        shutdown: AtomicBool::new(false),
        addr,
        default_k: config.default_k,
        max_k: config.max_k.max(1),
        queue_deadline: config.queue_deadline,
        read_cap: config.read_cap,
        write_timeout: config.write_timeout,
        tracer: Tracer::new(config.trace_sample, 256, 8),
        fault_control: config.fault_control,
    });

    let mut threads = match config.transport {
        Transport::Threaded => start_threaded(&shared, listener, &config)?,
        Transport::EventLoop => start_event_loop(&shared, listener, &config)?,
    };

    if let Some(poll) = config.watch_poll {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("clapf-serve-watch".into())
                .spawn(move || crate::watch::watch_bundle(&shared_watch(&shared), poll))
                .expect("spawn watcher"),
        );
    }

    if let Some(register) = config.register {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("clapf-serve-register".into())
                .spawn(move || crate::register::heartbeat_loop(shared, register))
                .expect("spawn register heartbeat"),
        );
    }

    Ok(ServerHandle { shared, threads })
}

/// The original blocking transport: accept thread + bounded queue +
/// per-connection worker threads.
fn start_threaded(
    shared: &Arc<Shared>,
    listener: TcpListener,
    config: &ServeConfig,
) -> Result<Vec<std::thread::JoinHandle<()>>, ServeError> {
    // Bounded queue: `try_send` from the accept thread never blocks, so a
    // full queue becomes an immediate load-shed 503 instead of an unbounded
    // backlog of connections whose clients have long since given up.
    let (tx, rx) = mpsc::sync_channel::<(TcpStream, Instant)>(config.queue_bound.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let mut threads = Vec::new();

    for n in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("clapf-serve-worker-{n}"))
                .spawn(move || loop {
                    let conn = rx.lock().expect("worker receiver poisoned").recv();
                    match conn {
                        Ok((stream, enqueued)) => {
                            // Admission deadline: a connection that sat in
                            // the queue past the deadline is shed, not
                            // served — its answer would arrive too late to
                            // matter and would delay fresher requests more.
                            if enqueued.elapsed() > shared.queue_deadline {
                                shed(stream, &shared);
                            } else {
                                serve_connection(stream, &shared);
                            }
                        }
                        Err(_) => return, // accept thread gone: drain complete
                    }
                })
                .expect("spawn worker"),
        );
    }

    {
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name("clapf-serve-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.shutdown.load(Ordering::Acquire) {
                            break; // drops tx; workers drain and exit
                        }
                        if let Ok(stream) = conn {
                            match tx.try_send((stream, Instant::now())) {
                                Ok(()) => {}
                                Err(mpsc::TrySendError::Full((stream, _))) => {
                                    shed(stream, &shared);
                                }
                                Err(mpsc::TrySendError::Disconnected(_)) => break,
                            }
                        }
                    }
                })
                .expect("spawn accept thread"),
        );
    }

    Ok(threads)
}

/// A connected loopback socket pair — the std-only self-pipe the scorer
/// pool uses to interrupt the poller wait when completions are ready.
fn loopback_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    // The write side never blocks the scorer: a full pipe just means a
    // wake is already pending.
    tx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// The event transport: one readiness-loop thread plus `workers` batch
/// scorer threads.
fn start_event_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    config: &ServeConfig,
) -> Result<Vec<std::thread::JoinHandle<()>>, ServeError> {
    let (waker_tx, waker_rx) = loopback_pair().map_err(ServeError::Io)?;
    let batcher = Arc::new(Batcher::new(waker_tx, config.batch_max, config.batch_hold));
    shared.registry.gauge("serve.conns").set(0.0);
    let mut threads = Vec::new();
    for n in 0..config.workers.max(1) {
        let batcher = Arc::clone(&batcher);
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("clapf-serve-scorer-{n}"))
                .spawn(move || crate::batch::scorer_loop(batcher, shared))
                .expect("spawn scorer"),
        );
    }
    let opts = EventOpts {
        max_conns: config.max_conns.max(1),
        pending_bound: config.pending_bound.max(1),
        prefer_epoll: !config.force_scan_poller,
        coalesce: config.cache_capacity > 0,
    };
    {
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name("clapf-serve-loop".into())
                .spawn(move || crate::transport::run(shared, listener, waker_rx, batcher, opts))
                .expect("spawn event loop"),
        );
    }
    Ok(threads)
}

/// The narrow view of [`Shared`] the watcher needs, kept private to this
/// crate so `watch.rs` cannot touch routing state.
pub(crate) struct WatchCtx {
    shared: Arc<Shared>,
}

fn shared_watch(shared: &Arc<Shared>) -> WatchCtx {
    WatchCtx {
        shared: Arc::clone(shared),
    }
}

impl WatchCtx {
    pub(crate) fn bundle_path(&self) -> &std::path::Path {
        &self.shared.bundle_path
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    pub(crate) fn reload(&self) -> Result<u64, BundleError> {
        self.shared.reload()
    }
}

/// Sheds one connection: typed 503 + `Retry-After`, counted, closed.
/// Called from the accept thread (queue full) and from workers (admission
/// deadline exceeded); both writes are bounded by a short timeout so a
/// hostile peer cannot turn the shed path itself into a stall.
fn shed(stream: TcpStream, shared: &Shared) {
    shared.registry.counter("serve.shed").inc();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let _ = Response::error(503, "server overloaded, retry shortly")
        .with_header("Retry-After", "1")
        .write_to(&mut stream, false);
    // Closing with unread request bytes in the receive buffer makes the
    // kernel send RST, which can destroy the 503 still in flight to the
    // peer. Signal end-of-response, then drain briefly so the close is a
    // clean FIN. Bounded: a hostile trickler costs at most ~600ms here.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let started = Instant::now();
    let mut scratch = [0u8; 1024];
    while started.elapsed() < Duration::from_millis(500) {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Runs the keep-alive request loop on one connection (threaded transport).
fn serve_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeouts turn blocked reads into shutdown-flag polls.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // A peer that stops reading must not pin the worker on a write.
    if stream.set_write_timeout(Some(shared.write_timeout)).is_err() {
        return;
    }
    // Responses are one small write each; Nagle + delayed ACK would add
    // tens of milliseconds per keep-alive round trip otherwise.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut idle = Duration::ZERO;
    loop {
        match parse_request_deadline_timed(&mut reader, Some(shared.read_cap)) {
            Ok((req, first_byte)) => {
                idle = Duration::ZERO;
                let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::Acquire);
                // Head-based sampling (or adoption of a router-propagated
                // id): a sampled request's trace begins at its first byte,
                // so the parse span covers the socket read.
                let mut trace = shared.begin_trace(req.trace_parent, first_byte);
                if let Some(t) = trace.as_mut() {
                    t.lap(stages().parse);
                }
                // Handler isolation: a panic in routing answers 500 and is
                // counted, but the worker thread — and every other queued
                // connection behind it — survives.
                let response =
                    match catch_unwind(AssertUnwindSafe(|| route(&req, shared, trace.as_mut()))) {
                        Ok(r) => r,
                        Err(_) => {
                            shared.registry.counter("serve.panics").inc();
                            Response::error(500, "internal error: handler panicked")
                        }
                    };
                let write_ok = response.write_to(&mut writer, keep_alive).is_ok();
                if let Some(mut t) = trace {
                    t.lap(stages().write);
                    shared.tracer.finish(t);
                }
                if !write_ok || !keep_alive {
                    return;
                }
            }
            Err(ParseError::Idle) => {
                idle += READ_POLL;
                if shared.shutdown.load(Ordering::Acquire) || idle >= KEEP_ALIVE_IDLE {
                    return;
                }
            }
            Err(ParseError::Eof) | Err(ParseError::Io(_)) => return,
            Err(ParseError::Bad { status, reason }) => {
                shared.registry.counter("serve.http_errors").inc();
                let _ = Response::error(status, reason).write_to(&mut writer, false);
                return;
            }
        }
    }
}

/// A `/recommend` cache miss, split from routing so each transport can
/// resolve it its own way: the threaded path computes synchronously (with
/// miss coalescing), the event loop parks it on the batch scorer.
pub(crate) struct PendingScore {
    /// The raw user id as requested (echoed in the response).
    pub raw_user: String,
    /// Dense user id.
    pub user: u32,
    /// Requested list length.
    pub k: usize,
    /// The model this request pinned; its generation keys the cache.
    pub model: Arc<ServingModel>,
}

/// What routing decided for one request.
pub(crate) enum Routed {
    /// The response is ready (every endpoint but a `/recommend` miss).
    Immediate(Response),
    /// A `/recommend` cache miss: the transport must score it.
    Score(PendingScore),
}

/// Dispatches one parsed request (threaded transport): resolves a score
/// synchronously through the coalescing cache.
fn route(req: &Request, shared: &Shared, mut trace: Option<&mut Trace>) -> Response {
    let started = Instant::now();
    match route_async(req, shared, trace.as_deref_mut()) {
        Routed::Immediate(r) => {
            if let Some(t) = trace {
                t.lap(stages().route);
            }
            r
        }
        Routed::Score(p) => {
            let st = stages();
            if let Some(t) = trace.as_deref_mut() {
                t.lap(st.cache_lookup);
            }
            let model = Arc::clone(&p.model);
            // When this thread is the one computing, capture how the window
            // split between the dense sweep and the top-k cut; a coalesced
            // request spent the same window waiting on the leader instead.
            let mut split: Option<(Duration, Duration)> = None;
            let (items, outcome) =
                shared
                    .cache
                    .get_or_compute(p.user, p.k, model.generation, || {
                        let mut scores = Vec::new();
                        let (items, score_d, cut_d) = model.top_k_dense_timed(
                            clapf_data::UserId(p.user),
                            p.k,
                            &mut scores,
                        );
                        split = Some((score_d, cut_d));
                        Arc::new(items)
                    });
            match outcome {
                CacheOutcome::Hit => shared.registry.counter("serve.cache.hits").inc(),
                CacheOutcome::Miss => shared.registry.counter("serve.cache.misses").inc(),
                CacheOutcome::Coalesced => {
                    shared.registry.counter("serve.cache.coalesced").inc()
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                match split {
                    Some((score_d, cut_d)) => t.lap_with(
                        st.score_compute,
                        &[
                            (st.f_score_us, score_d.as_micros() as u64),
                            (st.f_cut_us, cut_d.as_micros() as u64),
                        ],
                    ),
                    None => t.lap(st.score_wait),
                }
            }
            let r = render_recommend(
                &p.model,
                &p.raw_user,
                p.k,
                &items,
                outcome == CacheOutcome::Hit,
            );
            if let Some(t) = trace.as_deref_mut() {
                t.lap(st.render);
            }
            shared.observe_traced("recommend", started, trace.map(|t| t.id()));
            r
        }
    }
}

/// Dispatches one parsed request to its endpoint handler, without blocking
/// on scoring: a `/recommend` cache miss comes back as [`Routed::Score`]
/// for the calling transport to resolve.
pub(crate) fn route_async(req: &Request, shared: &Shared, mut trace: Option<&mut Trace>) -> Routed {
    let started = Instant::now();
    // Failpoint: tests inject handler I/O errors (typed 500) and panics
    // (exercising the transports' catch_unwind isolation) here.
    if let Err(e) = clapf_faults::check("serve.handler") {
        return Routed::Immediate(Response::error(500, &format!("handler fault: {e}")));
    }
    match (req.method, req.path.as_str()) {
        (Method::Get, "/healthz") => {
            let r = healthz(shared);
            shared.observe("healthz", started);
            Routed::Immediate(r)
        }
        (Method::Get, "/metrics") => {
            let r = metrics(shared);
            shared.observe("metrics", started);
            Routed::Immediate(r)
        }
        (Method::Get, "/debug/traces") => {
            let n = req
                .query_value("n")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(32);
            let r = crate::trace::debug_traces(&shared.tracer, n);
            shared.observe("debug", started);
            Routed::Immediate(r)
        }
        (Method::Get, "/debug/slow") => {
            let r = crate::trace::debug_slow(&shared.tracer);
            shared.observe("debug", started);
            Routed::Immediate(r)
        }
        (Method::Get, path) if path.starts_with("/recommend/") => {
            match recommend_route(&path["/recommend/".len()..], req, shared, trace.as_deref_mut())
            {
                Routed::Immediate(r) => {
                    shared.observe_traced("recommend", started, trace.map(|t| t.id()));
                    Routed::Immediate(r)
                }
                score => score, // the transport observes at completion
            }
        }
        (Method::Get, "/bundle/fingerprint") => {
            let model = shared.slot.current();
            let staged = shared
                .staged
                .lock()
                .expect("staged slot poisoned")
                .as_ref()
                .map(|m| JsonValue::Str(format!("{:016x}", m.fingerprint)))
                .unwrap_or(JsonValue::Null);
            let r = Response::json(
                200,
                JsonValue::Obj(vec![
                    ("generation".into(), JsonValue::UInt(model.generation)),
                    (
                        "fingerprint".into(),
                        JsonValue::Str(model.fingerprint_hex()),
                    ),
                    ("staged".into(), staged),
                ])
                .render(),
            );
            shared.observe("bundle", started);
            Routed::Immediate(r)
        }
        (Method::Post, "/bundle/stage") => {
            let r = match shared.stage_next() {
                Ok(fp) => Response::json(
                    200,
                    JsonValue::Obj(vec![
                        ("status".into(), JsonValue::Str("staged".into())),
                        ("fingerprint".into(), JsonValue::Str(format!("{fp:016x}"))),
                    ])
                    .render(),
                ),
                Err(e) => Response::error(500, &format!("stage rejected: {e}")),
            };
            shared.observe("bundle", started);
            Routed::Immediate(r)
        }
        (Method::Post, "/bundle/commit") => {
            let r = match fingerprint_param(req) {
                Err(r) => r,
                Ok(want) => match shared.commit_staged(want) {
                    Ok((gen, fp)) => Response::json(
                        200,
                        JsonValue::Obj(vec![
                            ("status".into(), JsonValue::Str("committed".into())),
                            ("generation".into(), JsonValue::UInt(gen)),
                            ("fingerprint".into(), JsonValue::Str(format!("{fp:016x}"))),
                        ])
                        .render(),
                    ),
                    Err((status, reason)) => Response::error(status, &reason),
                },
            };
            shared.observe("bundle", started);
            Routed::Immediate(r)
        }
        (Method::Post, "/bundle/abort") => {
            let r = match fingerprint_param(req) {
                Err(r) => r,
                Ok(bad) => match shared.abort_staged(bad) {
                    Ok((gen, fp)) => Response::json(
                        200,
                        JsonValue::Obj(vec![
                            ("status".into(), JsonValue::Str("aborted".into())),
                            ("generation".into(), JsonValue::UInt(gen)),
                            ("fingerprint".into(), JsonValue::Str(format!("{fp:016x}"))),
                        ])
                        .render(),
                    ),
                    Err((status, reason)) => Response::error(status, &reason),
                },
            };
            shared.observe("bundle", started);
            Routed::Immediate(r)
        }
        (Method::Post, "/reload") => {
            let r = match shared.reload() {
                Ok(gen) => Response::json(
                    200,
                    JsonValue::Obj(vec![
                        ("status".into(), JsonValue::Str("reloaded".into())),
                        ("generation".into(), JsonValue::UInt(gen)),
                    ])
                    .render(),
                ),
                Err(e) => Response::error(500, &format!("reload rejected: {e}")),
            };
            shared.observe("reload", started);
            Routed::Immediate(r)
        }
        (Method::Post, "/shutdown") => {
            shared.begin_shutdown();
            shared.observe("shutdown", started);
            Routed::Immediate(Response::json(
                200,
                JsonValue::Obj(vec![(
                    "status".into(),
                    JsonValue::Str("shutting down".into()),
                )])
                .render(),
            ))
        }
        // Chaos control plane, routable only when the operator opted in
        // with `fault_control` (the chaos harness starts replicas with
        // `--fault-control`). A process without the flag answers 404, so
        // production replicas expose no fault surface at all.
        (Method::Post, "/fault/arm") if shared.fault_control => {
            let r = fault_arm(req);
            shared.observe("fault", started);
            Routed::Immediate(r)
        }
        (Method::Post, "/fault/reset") if shared.fault_control => {
            clapf_faults::reset();
            shared.registry.counter("serve.fault.reset").inc();
            shared.observe("fault", started);
            Routed::Immediate(Response::json(
                200,
                JsonValue::Obj(vec![("status".into(), JsonValue::Str("reset".into()))]).render(),
            ))
        }
        _ => {
            shared.registry.counter("serve.not_found").inc();
            Routed::Immediate(Response::error(404, "no such endpoint"))
        }
    }
}

/// Arms a failpoint from query parameters: `point` (required),
/// `mode=io|torn|delay|panic` (default `io`), `keep` (torn bytes kept),
/// `ms` (delay), `skip` and `times` (firing window). Mirrors
/// [`clapf_faults::arm_nth`] so a chaos driver in another process can do
/// everything an in-process test can. Note that arming `serve.handler`
/// with an unbounded fault also takes down this endpoint — drivers should
/// bound such faults with `times`.
fn fault_arm(req: &Request) -> Response {
    let Some(point) = req.query_value("point").filter(|p| !p.is_empty()) else {
        return Response::error(400, "point query parameter required");
    };
    let num = |name: &str, default: u64| -> Result<u64, Response> {
        match req.query_value(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| Response::error(400, &format!("{name} must be a non-negative integer"))),
        }
    };
    let fault = match req.query_value("mode").unwrap_or("io") {
        "io" => clapf_faults::Fault::Io,
        "torn" => match num("keep", 0) {
            Ok(keep) => clapf_faults::Fault::Torn { keep: keep as usize },
            Err(r) => return r,
        },
        "delay" => match num("ms", 100) {
            Ok(ms) => clapf_faults::Fault::Delay { ms },
            Err(r) => return r,
        },
        "panic" => clapf_faults::Fault::Panic,
        other => {
            return Response::error(400, &format!("mode must be io|torn|delay|panic, got {other:?}"))
        }
    };
    let skip = match num("skip", 0) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let times = match req.query_value("times") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => return Response::error(400, "times must be a non-negative integer"),
        },
    };
    clapf_faults::arm_nth(point, fault, skip, times);
    Response::json(
        200,
        JsonValue::Obj(vec![
            ("status".into(), JsonValue::Str("armed".into())),
            ("point".into(), JsonValue::Str(point.to_string())),
        ])
        .render(),
    )
}

/// Parses the required `?fingerprint=` (16 hex digits) commit/abort
/// parameter, or the 400 to answer with.
fn fingerprint_param(req: &Request) -> Result<u64, Response> {
    req.query_value("fingerprint")
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| {
            Response::error(400, "fingerprint query parameter (hex digits) required")
        })
}

fn healthz(shared: &Shared) -> Response {
    let model = shared.slot.current();
    Response::json(
        200,
        JsonValue::Obj(vec![
            ("status".into(), JsonValue::Str("ok".into())),
            ("generation".into(), JsonValue::UInt(model.generation)),
            (
                "fingerprint".into(),
                JsonValue::Str(model.fingerprint_hex()),
            ),
            (
                "model".into(),
                JsonValue::Str(model.bundle.description.clone()),
            ),
        ])
        .render(),
    )
}

fn metrics(shared: &Shared) -> Response {
    // Gauges are sampled at scrape time; everything else is push-updated.
    shared
        .registry
        .gauge("serve.cache.entries")
        .set(shared.cache.len() as f64);
    shared
        .registry
        .gauge("serve.model.generation")
        .set(shared.slot.current().generation as f64);
    Response::text(200, shared.registry.render_text())
}

/// Validates a `/recommend/{user}` request and answers it from the cache,
/// or hands back a [`PendingScore`] for the transport to compute.
fn recommend_route(
    raw_user: &str,
    req: &Request,
    shared: &Shared,
    trace: Option<&mut Trace>,
) -> Routed {
    if raw_user.is_empty() || raw_user.contains('/') {
        return Routed::Immediate(Response::error(404, "expected /recommend/{user}"));
    }
    let k = match req.query_value("k") {
        None => shared.default_k,
        Some(v) => match v.parse::<usize>() {
            Ok(k) if (1..=shared.max_k).contains(&k) => k,
            Ok(_) => {
                return Routed::Immediate(Response::error(
                    400,
                    &format!("k must be between 1 and {}", shared.max_k),
                ))
            }
            Err(_) => {
                return Routed::Immediate(Response::error(400, "k must be a positive integer"))
            }
        },
    };

    // Pin the model FIRST; its generation keys every cache interaction, so
    // the cached list and the id map used to render it always come from the
    // same bundle (DESIGN.md §11).
    let model = shared.slot.current();
    let Some(u) = model.dense_user(raw_user) else {
        return Routed::Immediate(Response::error(
            404,
            &format!("user {raw_user:?} not in the training data"),
        ));
    };

    match shared.cache.get(u.0, k, model.generation) {
        Some(items) => {
            shared.registry.counter("serve.cache.hits").inc();
            if let Some(t) = trace {
                t.lap(stages().cache_hit);
            }
            Routed::Immediate(render_recommend(&model, raw_user, k, &items, true))
        }
        None => Routed::Score(PendingScore {
            raw_user: raw_user.to_string(),
            user: u.0,
            k,
            model,
        }),
    }
}

/// Renders the `/recommend` JSON body — the single definition both
/// transports (and the batch scorer's fan-out) serialize through, so a
/// batched answer is byte-identical to a single-request one.
pub(crate) fn render_recommend(
    model: &ServingModel,
    raw_user: &str,
    k: usize,
    items: &[u32],
    cached: bool,
) -> Response {
    let rendered: Vec<JsonValue> = items
        .iter()
        .map(|&i| JsonValue::Str(model.raw_item(i).to_string()))
        .collect();
    Response::json(
        200,
        JsonValue::Obj(vec![
            ("user".into(), JsonValue::Str(raw_user.to_string())),
            ("k".into(), JsonValue::UInt(k as u64)),
            ("generation".into(), JsonValue::UInt(model.generation)),
            ("cached".into(), JsonValue::Bool(cached)),
            ("items".into(), JsonValue::Arr(rendered)),
        ])
        .render(),
    )
}
