//! Readiness notification for the event-driven transport.
//!
//! Two backends behind one tiny API:
//!
//! * **epoll** (Linux, cargo feature `epoll`, on by default): a direct
//!   `extern "C"` declaration of the three epoll calls against the libc
//!   `std` already links — no external crate, same pattern as the raw
//!   `mmap(2)` in `clapf-data::storage`. Level-triggered, so the event
//!   loop never has to drain a socket completely to stay correct.
//! * **scan**: a portable fallback with no FFI at all. Every registered
//!   token is reported maybe-ready after a short sleep; the connection
//!   state machines are written against nonblocking sockets, so a spurious
//!   "ready" costs one `WouldBlock` syscall and nothing else. This is what
//!   `--no-default-features` builds and non-Linux targets run, and what
//!   `ServeConfig::force_scan_poller` selects for testing the fallback on
//!   Linux.
//!
//! Correctness therefore never depends on the backend: epoll only changes
//! *when* the loop looks at a connection, never *what* it does with it.

// The one unsafe surface of this crate: the epoll(7) FFI. Everything else
// in clapf-serve stays safe (the crate root carries `deny(unsafe_code)`).
#![cfg_attr(all(target_os = "linux", feature = "epoll"), allow(unsafe_code))]

use std::io;
use std::time::Duration;

/// Raw file descriptor type the poller registers.
#[cfg(unix)]
pub(crate) type Fd = std::os::unix::io::RawFd;
/// Placeholder fd type on targets without raw descriptors; the scan
/// backend never dereferences it.
#[cfg(not(unix))]
pub(crate) type Fd = usize;

/// One readiness report. With the scan backend both flags are always set —
/// "maybe ready" — and the nonblocking socket says no via `WouldBlock`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd is (maybe) readable, closed, or errored.
    pub readable: bool,
    /// The fd is (maybe) writable.
    pub writable: bool,
}

/// A readiness poller: epoll where available, portable scan elsewhere.
pub(crate) enum Poller {
    #[cfg(all(target_os = "linux", feature = "epoll"))]
    Epoll(epoll::Epoll),
    Scan(Scan),
}

impl Poller {
    /// Creates the best available backend; `prefer_epoll = false` forces
    /// the scan fallback (used by tests and `force_scan_poller`).
    pub fn new(prefer_epoll: bool) -> Poller {
        #[cfg(all(target_os = "linux", feature = "epoll"))]
        if prefer_epoll {
            if let Ok(e) = epoll::Epoll::new() {
                return Poller::Epoll(e);
            }
        }
        let _ = prefer_epoll;
        Poller::Scan(Scan::default())
    }

    /// Which backend is live (surfaced as a metric for tests/operators).
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll(_) => "epoll",
            Poller::Scan(_) => "scan",
        }
    }

    /// Starts watching `fd` under `token`; `writable` adds write interest.
    pub fn register(&mut self, fd: Fd, token: usize, writable: bool) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll(e) => e.ctl(epoll::EPOLL_CTL_ADD, fd, token, writable),
            Poller::Scan(s) => {
                let _ = writable; // scan reports every token writable anyway
                s.tokens.push((fd, token));
                Ok(())
            }
        }
    }

    /// Updates write interest for an already-registered fd.
    pub fn set_writable(&mut self, fd: Fd, token: usize, writable: bool) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll(e) => e.ctl(epoll::EPOLL_CTL_MOD, fd, token, writable),
            Poller::Scan(_) => {
                let _ = (fd, token, writable);
                Ok(())
            }
        }
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: Fd, token: usize) -> io::Result<()> {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll(e) => {
                let _ = token;
                e.del(fd)
            }
            Poller::Scan(s) => {
                s.tokens.retain(|&(f, t)| f != fd || t != token);
                Ok(())
            }
        }
    }

    /// Fills `out` with ready (or, for scan, maybe-ready) tokens, blocking
    /// for at most `timeout`.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        out.clear();
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll(e) => e.wait(out, timeout),
            Poller::Scan(s) => {
                // No readiness source: sleep a beat, then report everything
                // as maybe-ready. 1ms bounds the added per-request latency
                // while keeping an idle fallback server near-0% CPU.
                std::thread::sleep(timeout.min(Duration::from_millis(1)));
                out.extend(s.tokens.iter().map(|&(_, token)| Event {
                    token,
                    readable: true,
                    writable: true,
                }));
                Ok(())
            }
        }
    }
}

/// The portable backend: a list of registered tokens, all reported
/// maybe-ready each tick.
#[derive(Default)]
pub(crate) struct Scan {
    tokens: Vec<(Fd, usize)>,
}

#[cfg(all(target_os = "linux", feature = "epoll"))]
mod epoll {
    //! Raw epoll(7) via the libc `std` links. Constants and the event
    //! struct layout are the Linux UAPI values; `epoll_event` is packed on
    //! x86-64 only (the kernel ABI quirk), matching glibc's declaration.

    use super::{Event, Fd};
    use std::io;
    use std::os::raw::c_int;
    use std::time::Duration;

    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    pub(super) const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Capacity of the per-wait event buffer; more ready fds than this are
    /// simply delivered on the next (immediate) wait.
    const WAIT_CAPACITY: usize = 1024;

    pub(crate) struct Epoll {
        epfd: c_int,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; a negative return is
            // the documented error signal, checked before use.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_CAPACITY],
            })
        }

        pub(super) fn ctl(
            &mut self,
            op: c_int,
            fd: Fd,
            token: usize,
            writable: bool,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | EPOLLRDHUP | if writable { EPOLLOUT } else { 0 },
                data: token as u64,
            };
            // SAFETY: `ev` is a valid, initialized event for the duration
            // of the call; epfd and fd are fds this process owns.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn del(&mut self, fd: Fd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `ctl`; pre-2.6.9 kernels require a non-null
            // event pointer for DEL, which this satisfies everywhere.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            loop {
                // SAFETY: `buf` is a live allocation of WAIT_CAPACITY
                // initialized events; the kernel writes at most that many.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for slot in &self.buf[..n as usize] {
                    // Copy out of the (possibly packed) struct before use.
                    let ev = *slot;
                    let bits = ev.events;
                    out.push(Event {
                        token: ev.data as usize,
                        readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                        writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: epfd was returned by epoll_create1 and is closed once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[cfg(unix)]
    fn fd(s: &TcpStream) -> Fd {
        use std::os::unix::io::AsRawFd;
        s.as_raw_fd()
    }

    /// Both backends must surface "bytes waiting" as a readable event for
    /// the registered token (scan trivially, epoll via the kernel).
    #[cfg(unix)]
    fn readiness_roundtrip(prefer_epoll: bool) {
        let (mut tx, rx) = pair();
        rx.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(prefer_epoll);
        poller.register(fd(&rx), 7, false).unwrap();
        tx.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let mut saw = false;
        for _ in 0..200 {
            poller
                .wait(&mut events, Duration::from_millis(50))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                saw = true;
                break;
            }
        }
        assert!(saw, "no readable event for the registered token");
        let mut rx = rx;
        let mut buf = [0u8; 8];
        assert_eq!(rx.read(&mut buf).unwrap(), 1);
        poller.deregister(fd(&rx), 7).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn scan_backend_reports_readiness() {
        readiness_roundtrip(false);
    }

    #[cfg(all(target_os = "linux", feature = "epoll"))]
    #[test]
    fn epoll_backend_reports_readiness() {
        let p = Poller::new(true);
        assert_eq!(p.backend(), "epoll");
        readiness_roundtrip(true);
    }

    #[cfg(all(target_os = "linux", feature = "epoll"))]
    #[test]
    fn epoll_write_interest_toggles() {
        let (tx, _rx) = pair();
        tx.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(true);
        // Without write interest an idle socket produces no events.
        poller.register(fd(&tx), 1, false).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| !e.writable));
        // With write interest, a socket with buffer space is writable.
        poller.set_writable(fd(&tx), 1, true).unwrap();
        poller.wait(&mut events, Duration::from_millis(100)).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }
}
