//! A hand-rolled HTTP/1.1 subset over `std::io` — just what the
//! recommendation endpoints need, hardened against hostile input.
//!
//! Scope: request line + headers (no request bodies beyond a bounded
//! discard), `GET`/`POST`, percent-decoded paths and query strings,
//! keep-alive. Everything else is answered with a 4xx/5xx and the
//! connection is closed. The parser is total: any byte stream produces
//! `Ok(Request)` or a typed [`ParseError`] — never a panic — which the
//! `http_parser_never_panics` property test pins down.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest request body we are willing to read (and discard).
pub const MAX_BODY: usize = 64 * 1024;

/// The request methods the server routes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

/// A parsed request, decoded and bounded.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Percent-decoded path (always starts with `/`).
    pub path: String,
    /// Percent-decoded query pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Upstream trace id from an `X-Clapf-Trace` header (16 hex digits),
    /// set when a fleet router propagated its trace across the hop. `None`
    /// for direct clients or unparsable values — never an error.
    pub trace_parent: Option<u64>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_value(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending anything — the normal
    /// end of a keep-alive session, not an error to report.
    Eof,
    /// A read timed out before the first byte of a request arrived; the
    /// caller's poll loop decides whether to keep waiting.
    Idle,
    /// An I/O error mid-request (including timeouts after the first byte).
    Io(std::io::Error),
    /// The bytes are not an acceptable request; answer with `status` and
    /// close.
    Bad {
        /// HTTP status to answer with (4xx/5xx).
        status: u16,
        /// Human-readable reason for the response body.
        reason: &'static str,
    },
}

impl ParseError {
    fn bad(status: u16, reason: &'static str) -> Self {
        ParseError::Bad { status, reason }
    }
}

/// Wall-clock budget for reading one request, measured from its **first
/// byte** — an idle keep-alive connection spends nothing. Once started, a
/// request that has not fully arrived by the deadline is rejected with 408,
/// which defeats slow-loris clients trickling header bytes forever (each
/// byte resets the per-read socket timeout, so only a total cap helps).
struct ReadBudget {
    cap: Option<Duration>,
    started: Option<Instant>,
}

impl ReadBudget {
    fn new(cap: Option<Duration>) -> Self {
        ReadBudget { cap, started: None }
    }

    /// Marks the request as started (idempotent); call on the first byte.
    /// Always recorded — besides enforcing the cap, the instant is the
    /// natural start of a request trace (see `parse_request_deadline_timed`).
    fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    fn check(&self) -> Result<(), ParseError> {
        if let (Some(cap), Some(started)) = (self.cap, self.started) {
            if started.elapsed() > cap {
                return Err(ParseError::bad(408, "request read exceeded time budget"));
            }
        }
        Ok(())
    }
}

/// Reads one CRLF- (or LF-) terminated line, rejecting lines longer than
/// `cap` bytes. `first` marks the first read of a request, where EOF and
/// timeouts mean "no request" rather than "broken request".
fn read_line_capped<R: BufRead>(
    r: &mut R,
    cap: usize,
    over_cap: ParseError,
    first: bool,
    budget: &mut ReadBudget,
) -> Result<String, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        budget.check()?;
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if first && line.is_empty() {
                    return Err(ParseError::Idle);
                }
                return Err(ParseError::bad(408, "request timed out"));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        };
        if buf.is_empty() {
            // EOF.
            if first && line.is_empty() {
                return Err(ParseError::Eof);
            }
            return Err(ParseError::bad(400, "connection closed mid-request"));
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map(|p| p + 1).unwrap_or(buf.len());
        if line.len() + take > cap + 2 {
            // +2 tolerates the CRLF itself on an exactly-cap-sized line.
            // Consume what we peeked so a caller that keeps the connection
            // cannot re-read it, then reject.
            r.consume(take);
            return Err(over_cap);
        }
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        budget.start();
        if nl.is_some() {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| ParseError::bad(400, "request is not valid UTF-8"));
        }
    }
}

/// Percent-decodes `s`; `plus_is_space` applies the query-string `+` rule.
fn percent_decode(s: &str, plus_is_space: bool) -> Result<String, ParseError> {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16));
                let lo = bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16));
                match (hi, lo) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 3;
                    }
                    _ => return Err(ParseError::bad(400, "bad percent-escape")),
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| ParseError::bad(400, "escape is not valid UTF-8"))
}

/// Splits and decodes `a=1&b=two` into ordered pairs.
fn parse_query(q: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut out = Vec::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

/// Reads and parses one request from `r`.
///
/// Total over arbitrary input: every outcome is `Ok` or a typed error.
/// Request bodies (announced via `Content-Length`) are read and discarded
/// up to [`MAX_BODY`]; chunked transfer encoding is rejected.
pub fn parse_request<R: BufRead>(r: &mut R) -> Result<Request, ParseError> {
    parse_request_deadline(r, None)
}

/// [`parse_request`] with a **total** wall-clock cap on reading one request
/// (line + headers + body), measured from the request's first byte so idle
/// keep-alive connections are unaffected. Exceeding the cap is a
/// [`ParseError::Bad`] 408. `None` means uncapped.
pub fn parse_request_deadline<R: BufRead>(
    r: &mut R,
    read_cap: Option<Duration>,
) -> Result<Request, ParseError> {
    parse_request_deadline_timed(r, read_cap).map(|(req, _)| req)
}

/// [`parse_request_deadline`], also returning the instant the request's
/// first byte was read off the socket — the natural start of a request
/// trace, so a traced request's parse span covers the read as well as the
/// header parsing.
pub fn parse_request_deadline_timed<R: BufRead>(
    r: &mut R,
    read_cap: Option<Duration>,
) -> Result<(Request, Instant), ParseError> {
    let mut budget = ReadBudget::new(read_cap);
    let req = parse_with_budget(r, &mut budget)?;
    Ok((req, budget.started.unwrap_or_else(Instant::now)))
}

fn parse_with_budget<R: BufRead>(
    r: &mut R,
    budget: &mut ReadBudget,
) -> Result<Request, ParseError> {
    let line = read_line_capped(
        r,
        MAX_REQUEST_LINE,
        ParseError::bad(414, "request line too long"),
        true,
        budget,
    )?;
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::bad(400, "malformed request line")),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => return Err(ParseError::bad(405, "method not allowed")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::bad(505, "HTTP version not supported"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::bad(400, "target must be an absolute path"));
    }

    // Headers: we care about Connection, Content-Length and the absence of
    // Transfer-Encoding; everything else is skipped (but still bounded).
    let mut keep_alive = true; // HTTP/1.1 default
    let mut content_length: usize = 0;
    let mut trace_parent = None;
    let mut n_headers = 0;
    loop {
        let header = read_line_capped(
            r,
            MAX_HEADER_LINE,
            ParseError::bad(431, "header line too long"),
            false,
            budget,
        )?;
        if header.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(ParseError::bad(431, "too many headers"));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::bad(400, "malformed header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| ParseError::bad(400, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::bad(501, "transfer-encoding not supported"));
        } else if name.eq_ignore_ascii_case("x-clapf-trace") {
            // Malformed ids are dropped, not rejected: trace propagation is
            // best-effort and must never fail a request.
            trace_parent = u64::from_str_radix(value, 16).ok().filter(|&v| v != 0);
        }
    }

    // Discard any body so the next keep-alive request starts clean.
    if content_length > MAX_BODY {
        return Err(ParseError::bad(413, "request body too large"));
    }
    let mut remaining = content_length;
    while remaining > 0 {
        budget.check()?;
        let buf = match r.fill_buf() {
            Ok([]) => return Err(ParseError::bad(400, "connection closed mid-body")),
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ParseError::bad(408, "request timed out")),
        };
        let take = buf.len().min(remaining);
        r.consume(take);
        remaining -= take;
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method,
        path: percent_decode(raw_path, false)?,
        query: parse_query(raw_query)?,
        keep_alive,
        trace_parent,
    })
}

/// What [`FeedParser::next_request`] found in the bytes fed so far.
#[derive(Debug)]
pub enum Feed {
    /// A complete request was parsed (and its bytes consumed).
    Request(Request),
    /// The buffered bytes are a valid *prefix* of a request; feed more.
    NeedMore,
    /// The peer closed cleanly between requests — end of the session.
    Closed,
    /// The bytes can never become an acceptable request; answer with
    /// `status` and close.
    Bad {
        /// HTTP status to answer with (4xx/5xx).
        status: u16,
        /// Human-readable reason for the response body.
        reason: &'static str,
    },
}

/// Upper bound on bytes one request can occupy before the parser must have
/// produced a verdict: the request line, every header line the parser will
/// read before rejecting (`MAX_HEADERS` + the one that trips "too many"),
/// the body cap, and slack for line terminators. A `NeedMore` with more
/// than this buffered would be a parser bug; [`FeedParser`] turns it into
/// a 431 instead of buffering unboundedly.
const FEED_MAX: usize = MAX_REQUEST_LINE + (MAX_HEADERS + 2) * MAX_HEADER_LINE + MAX_BODY + 4096;

/// A [`BufRead`] over a byte slice that reports `WouldBlock` — not EOF —
/// when the bytes run out, unless `eof` marks the stream as closed. Feeding
/// the one-shot parser through this adapter is what makes incremental
/// parsing *by construction* identical to one-shot parsing: the parser
/// itself cannot tell a socket from a replayed buffer.
struct FeedReader<'a> {
    buf: &'a [u8],
    pos: usize,
    eof: bool,
}

impl std::io::Read for FeedReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let avail = self.fill_buf()?;
        let n = avail.len().min(out.len());
        out[..n].copy_from_slice(&avail[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for FeedReader<'_> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos < self.buf.len() {
            Ok(&self.buf[self.pos..])
        } else if self.eof {
            Ok(&[])
        } else {
            Err(std::io::ErrorKind::WouldBlock.into())
        }
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

/// Incremental (push-style) request parsing for nonblocking transports.
///
/// The event loop reads whatever bytes the socket has, [`feed`]s them here,
/// and asks for [`next_request`] until it answers [`Feed::NeedMore`]. The
/// implementation re-runs the one-shot total parser ([`parse_request`])
/// over the buffered bytes through a reader that reports `WouldBlock` at
/// the end of the buffer: a mid-request `WouldBlock` (surfaced by the
/// parser as its timeout rejection) means "incomplete, keep the bytes",
/// every other outcome is final. Because the *same* parser runs over the
/// *same* bytes, a request parsed from arbitrarily fragmented reads is
/// bit-identical to one parsed in one shot — the
/// `fragmented_feed_matches_one_shot` property test pins this down.
///
/// Re-parsing an incomplete request from its first byte on every feed is
/// quadratic in the worst case, but the request size is capped (see
/// [`FEED_MAX`], ~600 KiB) so the cost is bounded; typical requests are a
/// few hundred bytes and complete in one or two feeds.
///
/// [`feed`]: FeedParser::feed
/// [`next_request`]: FeedParser::next_request
#[derive(Default)]
pub struct FeedParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by completed requests.
    start: usize,
    /// The peer closed its write side; no more bytes will arrive.
    eof: bool,
}

impl FeedParser {
    /// An empty parser for a fresh connection.
    pub fn new() -> Self {
        FeedParser::default()
    }

    /// Appends bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily: drop the consumed prefix once it dominates the
        // buffer, so a long keep-alive session does not grow memory.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Marks end-of-stream: the peer closed its write side.
    pub fn close(&mut self) {
        self.eof = true;
    }

    /// Unconsumed bytes currently buffered (a partial request in flight).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to parse one request out of the buffered bytes.
    pub fn next_request(&mut self) -> Feed {
        let mut r = FeedReader {
            buf: &self.buf[self.start..],
            pos: 0,
            eof: self.eof,
        };
        let result = parse_request(&mut r);
        let used = r.pos;
        match result {
            Ok(req) => {
                self.start += used;
                Feed::Request(req)
            }
            Err(ParseError::Eof) => Feed::Closed,
            Err(ParseError::Idle) => Feed::NeedMore,
            // A 408 here is the parser hitting the reader's WouldBlock mid
            // request: more bytes may still complete it. (The wall-clock
            // budget that also answers 408 is not armed on this path, and a
            // closed stream reads EOF, never WouldBlock — so the mapping is
            // unambiguous.) Unbounded buffering is impossible: the line,
            // header-count and body caps all reject before FEED_MAX.
            Err(ParseError::Bad { status: 408, .. }) if !self.eof => {
                if self.buffered() > FEED_MAX {
                    Feed::Bad {
                        status: 431,
                        reason: "request too large",
                    }
                } else {
                    Feed::NeedMore
                }
            }
            Err(ParseError::Bad { status, reason }) => Feed::Bad { status, reason },
            // Unreachable with FeedReader (its only error is WouldBlock,
            // which the parser maps to Idle/408 above), but stay total.
            Err(ParseError::Io(_)) => Feed::Bad {
                status: 400,
                reason: "malformed request",
            },
        }
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional headers (e.g. `Retry-After` on a load-shed 503), written
    /// verbatim after the standard ones.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// Adds one extra header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// A JSON error envelope: `{"error": …}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = clapf_telemetry::JsonValue::Obj(vec![(
            "error".into(),
            clapf_telemetry::JsonValue::Str(message.into()),
        )])
        .render();
        Response::json(status, body)
    }

    /// Writes the response (status line, headers, body) to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> Result<Request, ParseError> {
        parse_request(&mut Cursor::new(s.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_plain_get() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/healthz");
        assert!(r.query.is_empty());
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let r = parse("GET /recommend/u%2F1?k=5&tag=a+b%21 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/recommend/u/1");
        assert_eq!(r.query_value("k"), Some("5"));
        assert_eq!(r.query_value("tag"), Some("a b!"));
        assert_eq!(r.query_value("missing"), None);
    }

    #[test]
    fn trace_parent_header_is_parsed_best_effort() {
        let r = parse("GET / HTTP/1.1\r\nX-Clapf-Trace: 00ff00ff00ff00ff\r\n\r\n").unwrap();
        assert_eq!(r.trace_parent, Some(0x00ff_00ff_00ff_00ff));
        // Case-insensitive header name, like every other header.
        let r = parse("GET / HTTP/1.1\r\nx-clapf-trace: 1a\r\n\r\n").unwrap();
        assert_eq!(r.trace_parent, Some(0x1a));
        // Garbage and zero ids are dropped silently, never a parse error.
        let r = parse("GET / HTTP/1.1\r\nX-Clapf-Trace: nope\r\n\r\n").unwrap();
        assert_eq!(r.trace_parent, None);
        let r = parse("GET / HTTP/1.1\r\nX-Clapf-Trace: 0\r\n\r\n").unwrap();
        assert_eq!(r.trace_parent, None);
        let r = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.trace_parent, None);
    }

    #[test]
    fn connection_close_is_honored() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn lf_only_line_endings_are_accepted() {
        let r = parse("GET /x HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(r.path, "/x");
    }

    fn expect_bad(input: &str, want_status: u16) {
        match parse(input) {
            Err(ParseError::Bad { status, .. }) => assert_eq!(status, want_status, "{input:?}"),
            other => panic!("expected Bad({want_status}) for {input:?}, got {other:?}"),
        }
    }

    #[test]
    fn rejections_carry_the_right_status() {
        expect_bad("NONSENSE\r\n\r\n", 400);
        expect_bad("DELETE /x HTTP/1.1\r\n\r\n", 405);
        expect_bad("GET /x SPDY/3\r\n\r\n", 505);
        expect_bad("GET relative HTTP/1.1\r\n\r\n", 400);
        expect_bad("GET /x HTTP/1.1\r\nbroken header\r\n\r\n", 400);
        expect_bad("GET /%zz HTTP/1.1\r\n\r\n", 400);
        expect_bad("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400);
        expect_bad("GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501);
        expect_bad(
            "POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
            413,
        );
    }

    #[test]
    fn oversized_request_line_is_414() {
        let input = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        expect_bad(&input, 414);
    }

    #[test]
    fn oversized_header_is_431_and_too_many_headers_is_431() {
        let input = format!("GET /x HTTP/1.1\r\nX: {}\r\n\r\n", "b".repeat(MAX_HEADER_LINE));
        expect_bad(&input, 431);
        let mut input = String::from("GET /x HTTP/1.1\r\n");
        for n in 0..=MAX_HEADERS {
            input.push_str(&format!("X-{n}: v\r\n"));
        }
        input.push_str("\r\n");
        expect_bad(&input, 431);
    }

    #[test]
    fn empty_input_is_eof_and_partial_is_bad() {
        assert!(matches!(parse(""), Err(ParseError::Eof)));
        assert!(matches!(
            parse("GET /x HTT"),
            Err(ParseError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHost: y"),
            Err(ParseError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn body_is_discarded_for_keep_alive() {
        let input = "POST /reload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n";
        let mut cur = Cursor::new(input.as_bytes().to_vec());
        let first = parse_request(&mut cur).unwrap();
        assert_eq!(first.method, Method::Post);
        assert_eq!(first.path, "/reload");
        let second = parse_request(&mut cur).unwrap();
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::json(200, "{\"a\":1}".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"), "{text}");
    }

    #[test]
    fn error_envelope_escapes_the_message() {
        let r = Response::error(404, "no user \"x\"");
        assert_eq!(r.body, "{\"error\":\"no user \\\"x\\\"\"}");
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut out = Vec::new();
        Response::error(503, "overloaded")
            .with_header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        let headers = text.split_once("\r\n\r\n").unwrap().0;
        assert!(headers.contains("Retry-After"), "header landed in the body");
    }

    /// Feeds one byte per `fill_buf`, sleeping between bytes — a slow-loris
    /// client that never triggers a per-read socket timeout.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            unreachable!("parse_request uses fill_buf/consume only")
        }
    }

    impl BufRead for Trickle {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.pos > 0 {
                std::thread::sleep(self.delay);
            }
            let end = (self.pos + 1).min(self.data.len());
            Ok(&self.data[self.pos..end])
        }
        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn slow_loris_trips_the_read_budget() {
        let mut r = Trickle {
            data: b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
            pos: 0,
            delay: Duration::from_millis(5),
        };
        match parse_request_deadline(&mut r, Some(Duration::from_millis(1))) {
            Err(ParseError::Bad { status: 408, .. }) => {}
            other => panic!("expected 408 budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn read_budget_does_not_charge_idle_connections() {
        // No bytes at all: the budget clock never starts, so an empty
        // stream is still a clean Eof (idle keep-alive), not a 408.
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(
            parse_request_deadline(&mut cur, Some(Duration::ZERO)),
            Err(ParseError::Eof)
        ));
        // A prompt, complete request well under the cap parses fine.
        let mut cur = Cursor::new(b"GET /x HTTP/1.1\r\n\r\n".to_vec());
        let r = parse_request_deadline(&mut cur, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(r.path, "/x");
    }

    #[test]
    fn feed_parser_handles_byte_at_a_time_arrival() {
        let input = b"GET /recommend/u1?k=3 HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut p = FeedParser::new();
        for (i, b) in input.iter().enumerate() {
            p.feed(std::slice::from_ref(b));
            match p.next_request() {
                Feed::NeedMore => assert!(i + 1 < input.len(), "complete request not parsed"),
                Feed::Request(r) => {
                    assert_eq!(i + 1, input.len(), "parsed before the final byte");
                    assert_eq!(r.path, "/recommend/u1");
                    assert_eq!(r.query_value("k"), Some("3"));
                    return;
                }
                other => panic!("unexpected {other:?} after {} bytes", i + 1),
            }
        }
        panic!("never produced a request");
    }

    #[test]
    fn feed_parser_splits_pipelined_requests() {
        let mut p = FeedParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        match p.next_request() {
            Feed::Request(r) => assert_eq!(r.path, "/a"),
            other => panic!("first: {other:?}"),
        }
        match p.next_request() {
            Feed::Request(r) => {
                assert_eq!(r.path, "/b");
                assert!(!r.keep_alive);
            }
            other => panic!("second: {other:?}"),
        }
        assert!(matches!(p.next_request(), Feed::NeedMore));
    }

    #[test]
    fn feed_parser_reports_bad_requests_and_eof() {
        let mut p = FeedParser::new();
        p.feed(b"NONSENSE\r\n\r\n");
        assert!(matches!(p.next_request(), Feed::Bad { status: 400, .. }));

        // EOF with a buffered partial request is a hard 400, not NeedMore.
        let mut p = FeedParser::new();
        p.feed(b"GET /x HTT");
        assert!(matches!(p.next_request(), Feed::NeedMore));
        p.close();
        assert!(matches!(p.next_request(), Feed::Bad { status: 400, .. }));

        // EOF on an empty buffer is a clean close.
        let mut p = FeedParser::new();
        p.close();
        assert!(matches!(p.next_request(), Feed::Closed));
    }

    #[test]
    fn feed_parser_discards_bodies_between_pipelined_requests() {
        let mut p = FeedParser::new();
        p.feed(b"POST /reload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
        assert!(matches!(p.next_request(), Feed::NeedMore), "body incomplete");
        p.feed(b"loGET /healthz HTTP/1.1\r\n\r\n");
        match p.next_request() {
            Feed::Request(r) => assert_eq!(r.path, "/reload"),
            other => panic!("first: {other:?}"),
        }
        match p.next_request() {
            Feed::Request(r) => assert_eq!(r.path, "/healthz"),
            other => panic!("second: {other:?}"),
        }
    }

    #[test]
    fn feed_parser_caps_unbounded_buffers() {
        let mut p = FeedParser::new();
        // A "request" that never completes: header bytes forever.
        let chunk = vec![b'a'; 64 * 1024];
        p.feed(b"GET /x HTTP/1.1\r\n");
        let mut verdict = None;
        for _ in 0..((FEED_MAX / chunk.len()) + 2) {
            p.feed(&chunk);
            match p.next_request() {
                Feed::NeedMore => continue,
                other => {
                    verdict = Some(other);
                    break;
                }
            }
        }
        match verdict {
            // 431 from the header-line cap or the feed cap — either bound
            // fires before the buffer grows without limit.
            Some(Feed::Bad { status, .. }) => assert_eq!(status, 431),
            other => panic!("oversized feed not rejected: {other:?}"),
        }
        assert!(p.buffered() <= FEED_MAX + chunk.len());
    }
}
