//! Online recommendation serving for CLAPF models.
//!
//! This crate turns a saved [`ModelBundle`] into a network service without
//! adding a single external dependency: a hand-rolled HTTP/1.1 subset over
//! `std::net`, a sharded generation-stamped top-k cache, and atomic model
//! hot-swap (file watcher or `POST /reload`). Two transports share every
//! route: an event-driven readiness loop (epoll on Linux via a std-only
//! FFI, a portable scan poller elsewhere) that owns thousands of
//! keep-alive connections on one thread and scores concurrent cache
//! misses in cross-request micro-batches ([`transport`], [`batch`]), and
//! a thread-per-connection worker pool ([`Transport::Threaded`]).
//!
//! Endpoints:
//!
//! | Endpoint | Answer |
//! |---|---|
//! | `GET /recommend/{user}?k=N` | Top-k unseen items for a raw user id, JSON |
//! | `GET /healthz` | Liveness + model generation + bundle fingerprint |
//! | `GET /metrics` | Prometheus text dump of the telemetry registry |
//! | `GET /debug/traces?n=N` | The N most recent sampled request traces, JSON |
//! | `GET /debug/slow` | The slowest sampled request traces seen, JSON |
//! | `GET /bundle/fingerprint` | Live + staged bundle fingerprints, JSON |
//! | `POST /reload` | Hot-swap to the bundle currently on disk |
//! | `POST /bundle/stage` | Load + validate `<bundle>.next` off to the side |
//! | `POST /bundle/commit?fingerprint=H` | Flip to the staged bundle (fleet phase 2) |
//! | `POST /bundle/abort?fingerprint=H` | Drop staged; revert if `H` is live |
//! | `POST /shutdown` | Graceful drain-and-stop |
//! | `POST /fault/arm?point=…` | Arm a failpoint (only with [`ServeConfig::fault_control`]) |
//! | `POST /fault/reset` | Disarm every failpoint (only with [`ServeConfig::fault_control`]) |
//!
//! A replica configured with [`ServeConfig::register`] additionally runs a
//! heartbeat thread that announces itself to a fleet router over
//! `POST /fleet/register` and keeps renewing its membership lease — the
//! replica half of the fleet's lease-based membership (see
//! [`RegisterConfig`]).
//!
//! The `/bundle/*` endpoints are the replica half of the **fleet-wide
//! two-phase rollout** the `clapf-fleet` crate drives: every replica
//! stages, fingerprints are verified everywhere, then every replica
//! commits (a pointer flip) — or the driver aborts and replicas restore
//! the previous bundle. Requests carrying an `X-Clapf-Trace` header adopt
//! the router's trace id, so one id follows a request across the hop.
//!
//! The serving path reuses the exact offline machinery — scoring through
//! [`clapf_metrics::top_k_for_user`] — so a served list is bit-identical to
//! what the evaluator would rank for the same user (the integration tests
//! assert this). Consistency under hot-swap is by construction, not by
//! locking the request path: see [`model`] for the pin-then-swap protocol
//! and [`cache`] for generation stamping.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod bundle;
mod cache;
mod conn;
mod http;
mod model;
mod poller;
mod register;
mod server;
mod trace;
mod transport;
mod watch;

pub use bundle::{fingerprint64, BundleError, ModelBundle};
pub use cache::{CacheOutcome, TopKCache};
pub use http::{
    parse_request, parse_request_deadline, parse_request_deadline_timed, Feed, FeedParser, Method,
    ParseError, Request, Response,
};
pub use model::{ModelSlot, ServingModel};
pub use register::RegisterConfig;
pub use server::{start, ServeConfig, ServeError, ServerHandle, Transport};
