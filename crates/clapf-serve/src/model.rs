//! The live model a server answers from, and the slot it hot-swaps through.
//!
//! Hot-swap protocol (see DESIGN.md §11):
//!
//! 1. A request handler pins the current [`ServingModel`] with one
//!    [`ModelSlot::current`] call and uses *its* `generation` for every
//!    cache interaction. Model, id map, training set and generation travel
//!    together in one `Arc`, so a handler can never mix artifacts from two
//!    bundles — no torn model, ever.
//! 2. The reloader (serialized by a mutex in the server) loads and
//!    validates the new bundle off to the side. Failures leave the slot
//!    untouched; the old model keeps serving.
//! 3. On success it swaps the slot *first*, then bumps the cache
//!    generation. Handlers that pinned the old model keep reading
//!    old-generation cache entries (consistent with the model they hold);
//!    handlers that pin the new model find only fresh entries because the
//!    new generation starts empty and stale `put`s are discarded.

use crate::bundle::{BundleError, ModelBundle};
use clapf_data::{Interactions, UserId};
use clapf_metrics::top_k_for_user_into;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A validated bundle plus everything precomputed for request serving.
pub struct ServingModel {
    /// The loaded bundle (factors, id map, description).
    pub bundle: ModelBundle,
    /// Training interactions, rebuilt once so handlers can exclude seen
    /// items without re-bucketing pairs per request.
    pub train: Interactions,
    /// The cache generation this model was published under.
    pub generation: u64,
    /// FNV-1a hash of the bundle file bytes this model was loaded from
    /// (see [`crate::bundle::fingerprint64`]). Zero for models built in
    /// memory rather than loaded from disk.
    pub fingerprint: u64,
}

impl ServingModel {
    /// Loads and validates the bundle at `path`, stamping it `generation`.
    pub fn load(path: &Path, generation: u64) -> Result<Self, BundleError> {
        let (bundle, fingerprint) = ModelBundle::load_fingerprinted(path)?;
        let train = bundle.train_interactions();
        Ok(ServingModel {
            bundle,
            train,
            generation,
            fingerprint,
        })
    }

    /// The fingerprint as the 16-hex-digit string the fleet protocol and
    /// `/healthz` report.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// Dense id for a raw user id, if the user was in the training data.
    pub fn dense_user(&self, raw: &str) -> Option<UserId> {
        self.bundle.ids.dense_user(raw)
    }

    /// Raw id for a dense item id. Panics only on ids outside the model,
    /// which `top_k_dense` never produces.
    pub fn raw_item(&self, dense: u32) -> &str {
        self.bundle
            .ids
            .raw_item(clapf_data::ItemId(dense))
            .expect("top-k item ids are in range")
    }

    /// Top-k dense item ids for `u`, excluding trained items, reusing the
    /// caller's scratch buffers.
    pub fn top_k_dense(&self, u: UserId, k: usize, scores: &mut Vec<f32>) -> Vec<u32> {
        let mut items = Vec::new();
        top_k_for_user_into(&self.bundle.model, &self.train, u, k, scores, &mut items);
        items.into_iter().map(|i| i.0).collect()
    }

    /// [`top_k_dense`](Self::top_k_dense), also reporting how the time
    /// split between the dense score sweep and the top-k cut. The result is
    /// bit-identical: this is the exact decomposition
    /// [`top_k_for_user_into`] performs, with a clock between the halves.
    pub fn top_k_dense_timed(
        &self,
        u: UserId,
        k: usize,
        scores: &mut Vec<f32>,
    ) -> (Vec<u32>, std::time::Duration, std::time::Duration) {
        use clapf_metrics::BulkScorer;
        let t0 = std::time::Instant::now();
        self.bundle.model.scores_into(u, scores);
        let score_d = t0.elapsed();
        let t1 = std::time::Instant::now();
        let mut items = Vec::new();
        clapf_metrics::top_k_from_scores(scores, &self.train, u, k, &mut items);
        (
            items.into_iter().map(|i| i.0).collect(),
            score_d,
            t1.elapsed(),
        )
    }
}

/// The atomically swappable pointer to the live model.
///
/// `RwLock<Arc<_>>` rather than bare atomics: the critical section is two
/// pointer copies, readers never block each other, and it stays entirely in
/// safe Rust (this workspace denies `unsafe` outside one audited module).
pub struct ModelSlot {
    slot: RwLock<Arc<ServingModel>>,
}

impl ModelSlot {
    /// Creates a slot holding `model`.
    pub fn new(model: ServingModel) -> Self {
        ModelSlot {
            slot: RwLock::new(Arc::new(model)),
        }
    }

    /// Pins the current model. The returned `Arc` stays valid (and
    /// internally consistent) for as long as the caller holds it, even
    /// across any number of swaps.
    pub fn current(&self) -> Arc<ServingModel> {
        Arc::clone(&self.slot.read().expect("model slot poisoned"))
    }

    /// Publishes `model`, returning the one it replaced.
    pub fn swap(&self, model: ServingModel) -> Arc<ServingModel> {
        let mut slot = self.slot.write().expect("model slot poisoned");
        std::mem::replace(&mut *slot, Arc::new(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapf_data::loader::{load_ratings_reader, Separator};
    use clapf_data::ItemId;
    use clapf_mf::{Init, MfModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn serving_model(bias: [f32; 3], generation: u64) -> ServingModel {
        let csv = "u1,a,5\nu1,b,5\nu2,b,4\nu2,c,5\n";
        let loaded =
            load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = MfModel::new(
            loaded.interactions.n_users(),
            loaded.interactions.n_items(),
            2,
            Init::Zeros,
            &mut rng,
        );
        for (idx, b) in bias.iter().enumerate() {
            *model.bias_mut(ItemId(idx as u32)) = *b;
        }
        let bundle = ModelBundle::new("test".into(), model, loaded.ids, &loaded.interactions);
        let train = bundle.train_interactions();
        ServingModel {
            bundle,
            train,
            generation,
            fingerprint: 0,
        }
    }

    #[test]
    fn top_k_dense_matches_the_shared_helper() {
        let m = serving_model([0.1, 0.5, 0.9], 0);
        let u = m.dense_user("u1").unwrap();
        let mut scores = Vec::new();
        let got = m.top_k_dense(u, 10, &mut scores);
        let want = clapf_metrics::top_k_for_user(&m.bundle.model, &m.train, u, 10);
        assert_eq!(got, want.items.iter().map(|i| i.0).collect::<Vec<_>>());
        // u1 trained on {a=0, b=1}; only c=2 is recommendable.
        assert_eq!(got, vec![2]);
        assert_eq!(m.raw_item(2), "c");
    }

    #[test]
    fn timed_top_k_is_bit_identical_to_untimed() {
        let m = serving_model([0.1, 0.5, 0.9], 0);
        for raw in ["u1", "u2"] {
            let u = m.dense_user(raw).unwrap();
            let (mut s1, mut s2) = (Vec::new(), Vec::new());
            let (timed, _, _) = m.top_k_dense_timed(u, 10, &mut s2);
            assert_eq!(m.top_k_dense(u, 10, &mut s1), timed);
            assert_eq!(s1, s2, "score buffers must match bit for bit");
        }
    }

    #[test]
    fn slot_swap_publishes_and_old_pins_stay_valid() {
        let slot = ModelSlot::new(serving_model([0.1, 0.5, 0.9], 0));
        let pinned = slot.current();
        assert_eq!(pinned.generation, 0);
        let old = slot.swap(serving_model([0.9, 0.5, 0.1], 1));
        assert_eq!(old.generation, 0);
        // The pre-swap pin still reads the old model coherently.
        assert_eq!(pinned.generation, 0);
        let u = pinned.dense_user("u1").unwrap();
        let mut scores = Vec::new();
        assert_eq!(pinned.top_k_dense(u, 10, &mut scores), vec![2]);
        // New pins see the new model.
        assert_eq!(slot.current().generation, 1);
    }
}
