//! The event-driven transport: one readiness loop, many connections.
//!
//! A single thread owns every socket: the nonblocking listener, a loopback
//! waker the scorer pool rings when results are ready, and one [`Conn`]
//! state machine per client. Each connection walks
//! `reading → parsing → (immediate | pending-score) → writing`, so tens of
//! thousands of keep-alive connections cost a few hundred bytes of state
//! each instead of a thread each.
//!
//! `/recommend` cache misses do not block the loop: the request parks in
//! `pending` (keyed by [`ScoreKey`], which also coalesces concurrent
//! misses for the same key — exactly one job is queued, every waiter gets
//! the one result) and the loop moves on. The scorer pool (see
//! [`crate::batch`]) drains the queue in generation-pure micro-batches and
//! rings the waker; the loop then fans each completion out to its waiters
//! and resumes any pipelined requests buffered behind them.
//!
//! Overload and abuse protections mirror the threaded transport:
//! `max_conns` caps accepted sockets (beyond it, accept-then-503-shed),
//! `pending_bound` caps queued score jobs (beyond it, per-request 503 with
//! `Retry-After` — the connection survives), and a periodic sweep enforces
//! the read budget (408 to slow-loris writers), the write timeout (peers
//! that stop reading are dropped), and the keep-alive idle limit.
//!
//! Graceful drain: when the shutdown flag flips (POST /shutdown, the
//! handle, or SIGTERM plumbing upstream), the loop stops accepting, marks
//! every connection close-after-flush, lets in-flight batches complete and
//! their responses flush, then exits once no connection or pending score
//! remains. The `begin_shutdown` self-connect wake works unchanged: the
//! listener becoming readable is itself a poller event.

use crate::batch::{Batcher, ScoreJob, ScoreKey};
use crate::conn::{Conn, FlushState};
use crate::http::{Feed, Response};
use crate::model::ServingModel;
use crate::poller::{Event, Fd, Poller};
use crate::server::{route_async, render_recommend, PendingScore, Routed, Shared, KEEP_ALIVE_IDLE};
use crate::trace::stages;
use clapf_telemetry::Trace;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOK_LISTENER: usize = 0;
const TOK_WAKER: usize = 1;
const TOK_BASE: usize = 2;

/// Upper bound on one poller wait; also the cadence of deadline sweeps.
const WAIT_TIMEOUT: Duration = Duration::from_millis(250);

/// Sizing knobs for the event transport.
pub(crate) struct EventOpts {
    /// Most simultaneously open client connections; beyond it new accepts
    /// are shed with a 503.
    pub max_conns: usize,
    /// Most queued score jobs; beyond it `/recommend` misses are shed with
    /// a 503 + `Retry-After` while the connection stays open.
    pub pending_bound: usize,
    /// Use epoll when compiled in (false forces the scan fallback).
    pub prefer_epoll: bool,
    /// Coalesce concurrent misses for one key (true iff the cache is
    /// enabled; with the cache off every request must be scored).
    pub coalesce: bool,
}

/// One parked `/recommend` request waiting for a score completion.
struct Waiter {
    token: usize,
    /// Guards against slab-token reuse: delivery requires the connection's
    /// serial to match the one that parked.
    serial: u64,
    raw_user: String,
    keep_alive: bool,
    started: Instant,
    /// The model the request pinned (renders the answer's id map).
    model: Arc<ServingModel>,
    /// The request's sampled trace, if any; batch phase spans are fanned
    /// onto it at delivery and it finishes when the response flushes.
    trace: Option<Trace>,
}

#[cfg(unix)]
fn sock_fd(s: &TcpStream) -> Fd {
    use std::os::unix::io::AsRawFd;
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn sock_fd(_s: &TcpStream) -> Fd {
    0
}

#[cfg(unix)]
fn listener_fd(l: &TcpListener) -> Fd {
    use std::os::unix::io::AsRawFd;
    l.as_raw_fd()
}

#[cfg(not(unix))]
fn listener_fd(_l: &TcpListener) -> Fd {
    0
}

struct EventLoop {
    shared: Arc<Shared>,
    batcher: Arc<Batcher>,
    poller: Poller,
    listener: TcpListener,
    waker_rx: TcpStream,
    opts: EventOpts,
    /// Connection slab, indexed by `token - TOK_BASE`.
    conns: Vec<Option<Conn>>,
    /// Recycled tokens.
    free: Vec<usize>,
    n_conns: usize,
    /// Next connection serial (see [`Conn::serial`]).
    next_serial: u64,
    /// Next uniqueness salt for non-coalescing score keys.
    next_seq: u64,
    /// Parked requests per in-flight score key. An entry may outlive its
    /// waiters (all disconnected): the job is still in flight, later
    /// arrivals still coalesce onto it, and its completion removes it.
    pending: HashMap<ScoreKey, Vec<Waiter>>,
    draining: bool,
}

/// Runs the event loop until shutdown drains it. Called on a dedicated
/// thread by `server::start`; tears the batcher down on exit so the scorer
/// pool unblocks and joins.
pub(crate) fn run(
    shared: Arc<Shared>,
    listener: TcpListener,
    waker_rx: TcpStream,
    batcher: Arc<Batcher>,
    opts: EventOpts,
) {
    let mut poller = Poller::new(opts.prefer_epoll);
    shared
        .registry
        .counter(&format!("serve.backend.{}", poller.backend()))
        .inc();
    if listener.set_nonblocking(true).is_err()
        || waker_rx.set_nonblocking(true).is_err()
        || poller
            .register(listener_fd(&listener), TOK_LISTENER, false)
            .is_err()
        || poller
            .register(sock_fd(&waker_rx), TOK_WAKER, false)
            .is_err()
    {
        batcher.begin_shutdown();
        return;
    }
    let mut ev = EventLoop {
        shared,
        batcher,
        poller,
        listener,
        waker_rx,
        opts,
        conns: Vec::new(),
        free: Vec::new(),
        n_conns: 0,
        next_serial: 0,
        next_seq: 0,
        pending: HashMap::new(),
        draining: false,
    };
    ev.run();
    ev.batcher.begin_shutdown();
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        let mut last_sweep = Instant::now();
        loop {
            // Failpoint: tests inject transient wait errors here; the loop
            // treats them as spurious wakeups and keeps serving.
            if clapf_faults::check("serve.epoll.wait").is_err() {
                self.shared.registry.counter("serve.epoll.faults").inc();
                events.clear();
            } else if self.poller.wait(&mut events, WAIT_TIMEOUT).is_err() {
                self.shared.registry.counter("serve.epoll.errors").inc();
                events.clear();
            }
            let batch = std::mem::take(&mut events);
            for event in batch {
                match event.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.drain_waker(&mut scratch),
                    token => self.conn_event(token, event, &mut scratch),
                }
            }
            for completion in self.batcher.take_completions() {
                self.deliver(completion);
            }
            if !self.draining && self.shared.shutdown.load(Ordering::Acquire) {
                self.begin_drain();
            }
            if last_sweep.elapsed() >= WAIT_TIMEOUT {
                self.sweep();
                last_sweep = Instant::now();
            }
            if self.draining && self.pending.is_empty() && self.n_conns == 0 {
                return;
            }
        }
    }

    fn conn_mut(&mut self, token: usize) -> Option<&mut Conn> {
        self.conns.get_mut(token.checked_sub(TOK_BASE)?)?.as_mut()
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // drop: drain refuses new connections
                    }
                    if self.n_conns >= self.opts.max_conns {
                        self.shed_accept(stream);
                        continue;
                    }
                    self.next_serial += 1;
                    let Ok(conn) = Conn::new(stream, self.next_serial) else {
                        continue;
                    };
                    let token = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1 + TOK_BASE
                    });
                    let fd = sock_fd(&conn.stream);
                    self.conns[token - TOK_BASE] = Some(conn);
                    if self.poller.register(fd, token, false).is_err() {
                        self.conns[token - TOK_BASE] = None;
                        self.free.push(token);
                        continue;
                    }
                    self.n_conns += 1;
                    self.shared
                        .registry
                        .gauge("serve.conns")
                        .set(self.n_conns as f64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Best-effort 503 to a connection over the cap; one nonblocking write,
    /// never a stall on the loop thread.
    fn shed_accept(&mut self, stream: TcpStream) {
        self.shared.registry.counter("serve.shed").inc();
        let _ = stream.set_nonblocking(true);
        let mut buf = Vec::new();
        let _ = Response::error(503, "server overloaded, retry shortly")
            .with_header("Retry-After", "1")
            .write_to(&mut buf, false);
        let mut stream = stream;
        let _ = std::io::Write::write(&mut stream, &buf);
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    fn drain_waker(&mut self, scratch: &mut [u8]) {
        loop {
            match std::io::Read::read(&mut self.waker_rx, scratch) {
                Ok(0) => return, // scorer side dropped; completions still drain
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock or a dead waker: nothing to drain
            }
        }
    }

    fn conn_event(&mut self, token: usize, event: Event, scratch: &mut [u8]) {
        if event.readable {
            let outcome = match self.conn_mut(token) {
                Some(conn) => conn.read_ready(scratch),
                None => return,
            };
            match outcome {
                Ok(peer_closed) => {
                    if peer_closed {
                        if let Some(conn) = self.conn_mut(token) {
                            conn.close_after_flush = true;
                        }
                    }
                    self.advance(token);
                }
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        if event.writable && self.conn_mut(token).is_some() {
            self.flush_conn(token);
        }
    }

    /// Parses and dispatches buffered requests until the connection blocks
    /// on bytes or parks on a score, then flushes whatever got queued.
    fn advance(&mut self, token: usize) {
        loop {
            let feed = match self.conn_mut(token) {
                Some(conn) if conn.awaiting.is_none() => conn.parser.next_request(),
                _ => break,
            };
            match feed {
                Feed::Request(req) => {
                    self.handle_request(token, req);
                    if let Some(conn) = self.conn_mut(token) {
                        // The read budget covers one request: restart the
                        // clock iff bytes of the next one are buffered.
                        conn.request_started =
                            (conn.parser.buffered() > 0).then(Instant::now);
                    }
                }
                Feed::NeedMore => {
                    if let Some(conn) = self.conn_mut(token) {
                        if conn.parser.buffered() == 0 {
                            conn.request_started = None;
                        }
                    }
                    break;
                }
                Feed::Closed => {
                    if let Some(conn) = self.conn_mut(token) {
                        conn.close_after_flush = true;
                    }
                    break;
                }
                Feed::Bad { status, reason } => {
                    self.shared.registry.counter("serve.http_errors").inc();
                    if let Some(conn) = self.conn_mut(token) {
                        conn.push_response(&Response::error(status, reason), false);
                    }
                    break;
                }
            }
        }
        self.flush_conn(token);
    }

    fn handle_request(&mut self, token: usize, req: crate::http::Request) {
        let started = Instant::now();
        let shared = Arc::clone(&self.shared);
        let keep_alive = req.keep_alive && !self.draining;
        // Head-based sampling: a sampled request's trace begins at its
        // first buffered byte, so the parse span covers read + parse.
        let first_byte = self
            .conn_mut(token)
            .and_then(|c| c.request_started)
            .unwrap_or(started);
        let mut trace = self.shared.begin_trace(req.trace_parent, first_byte);
        if let Some(t) = trace.as_mut() {
            t.lap(stages().parse);
        }
        // Panic isolation at request granularity, exactly as the threaded
        // transport's worker loop does around `route`.
        let routed =
            catch_unwind(AssertUnwindSafe(|| route_async(&req, &shared, trace.as_mut())));
        match routed {
            Err(_) => {
                self.shared.registry.counter("serve.panics").inc();
                if let Some(conn) = self.conn_mut(token) {
                    conn.push_response(
                        &Response::error(500, "internal error: handler panicked"),
                        keep_alive,
                    );
                }
                self.stash_trace(token, trace);
            }
            Ok(Routed::Immediate(resp)) => {
                if let Some(t) = trace.as_mut() {
                    t.lap(stages().route);
                }
                if let Some(conn) = self.conn_mut(token) {
                    conn.push_response(&resp, keep_alive);
                }
                if let Some(t) = trace.as_mut() {
                    t.lap(stages().render);
                }
                self.stash_trace(token, trace);
            }
            Ok(Routed::Score(p)) => self.park_score(token, p, keep_alive, started, trace),
        }
    }

    /// Parks `trace` on the connection so `flush_conn` can finish it with
    /// a write span once the response drains. A predecessor still parked
    /// there (pipelined sampled requests) is finished as-is first.
    fn stash_trace(&mut self, token: usize, trace: Option<Trace>) {
        let Some(t) = trace else { return };
        let displaced = match self.conn_mut(token) {
            Some(conn) => conn.trace.replace(t),
            None => Some(t), // connection gone: close the trace out now
        };
        if let Some(old) = displaced {
            self.shared.tracer.finish(old);
        }
    }

    /// Parks a cache-missing `/recommend` on the score queue (or sheds it).
    fn park_score(
        &mut self,
        token: usize,
        p: PendingScore,
        keep_alive: bool,
        started: Instant,
        mut trace: Option<Trace>,
    ) {
        if self.batcher.queue_len() >= self.opts.pending_bound {
            self.shared.registry.counter("serve.shed").inc();
            if let Some(conn) = self.conn_mut(token) {
                conn.push_response(
                    &Response::error(503, "server overloaded, retry shortly")
                        .with_header("Retry-After", "1"),
                    keep_alive,
                );
            }
            self.stash_trace(token, trace);
            return;
        }
        // Routing + the cache probe end here; the batch spans pick the
        // timeline up from the job's enqueue.
        if let Some(t) = trace.as_mut() {
            t.lap(stages().cache_lookup);
        }
        let seq = if self.opts.coalesce {
            0
        } else {
            self.next_seq += 1;
            self.next_seq
        };
        let key = ScoreKey {
            user: p.user,
            k: p.k,
            generation: p.model.generation,
            seq,
        };
        let serial = match self.conn_mut(token) {
            Some(conn) => {
                conn.awaiting = Some(key);
                conn.serial
            }
            None => return,
        };
        let waiter = Waiter {
            token,
            serial,
            raw_user: p.raw_user,
            keep_alive,
            started,
            model: Arc::clone(&p.model),
            trace,
        };
        match self.pending.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().push(waiter);
                self.shared.registry.counter("serve.cache.coalesced").inc();
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![waiter]);
                self.shared.registry.counter("serve.cache.misses").inc();
                self.batcher.enqueue(ScoreJob {
                    key,
                    model: p.model,
                    enqueued: Instant::now(),
                });
            }
        }
    }

    /// Fans one completion out to every still-connected waiter and resumes
    /// any pipelined requests buffered behind them.
    fn deliver(&mut self, completion: crate::batch::Completion) {
        let Some(waiters) = self.pending.remove(&completion.key) else {
            return;
        };
        for mut w in waiters {
            let resp = {
                let Some(conn) = self.conn_mut(w.token) else {
                    continue;
                };
                if conn.serial != w.serial {
                    continue;
                }
                conn.awaiting = None;
                match &completion.items {
                    Some(items) => {
                        render_recommend(&w.model, &w.raw_user, completion.key.k, items, false)
                    }
                    None => Response::error(500, completion.error),
                }
            };
            let keep_alive = w.keep_alive && !self.draining;
            if let Some(t) = w.trace.as_mut() {
                // The batch's shared phase clock lands on every member
                // request: queue wait (including the bounded hold), the
                // sweep + cut, and the waker round trip back to this loop.
                let st = stages();
                if let Some(bt) = completion.timing {
                    t.span_between(st.batch_queue, bt.enqueued, bt.formed);
                    t.span_between_with(
                        st.batch_score,
                        bt.formed,
                        bt.scored,
                        &[(st.f_batch, bt.size as u64)],
                    );
                    t.span_between(st.batch_wake, bt.scored, Instant::now());
                }
                t.rebase();
            }
            if let Some(conn) = self.conn_mut(w.token) {
                conn.push_response(&resp, keep_alive);
            }
            if let Some(t) = w.trace.as_mut() {
                t.lap(stages().render);
            }
            self.shared
                .observe_traced("recommend", w.started, w.trace.as_ref().map(|t| t.id()));
            self.stash_trace(w.token, w.trace);
            self.advance(w.token);
        }
    }

    fn flush_conn(&mut self, token: usize) {
        let (result, fd) = match self.conn_mut(token) {
            Some(conn) => (conn.flush(), sock_fd(&conn.stream)),
            None => return,
        };
        match result {
            Ok(FlushState::Flushed) => {
                let mut disarm = false;
                let mut close = false;
                let mut flushed_trace = None;
                if let Some(conn) = self.conn_mut(token) {
                    if conn.wants_write {
                        conn.wants_write = false;
                        disarm = true;
                    }
                    close = conn.close_after_flush && conn.awaiting.is_none();
                    flushed_trace = conn.trace.take();
                }
                if let Some(mut t) = flushed_trace {
                    t.lap(stages().write);
                    self.shared.tracer.finish(t);
                }
                if disarm {
                    let _ = self.poller.set_writable(fd, token, false);
                }
                if close {
                    self.drop_conn(token);
                }
            }
            Ok(FlushState::Partial) => {
                let mut arm = false;
                if let Some(conn) = self.conn_mut(token) {
                    if !conn.wants_write {
                        conn.wants_write = true;
                        arm = true;
                    }
                }
                if arm && self.poller.set_writable(fd, token, true).is_err() {
                    self.drop_conn(token);
                }
            }
            Err(_) => self.drop_conn(token),
        }
    }

    fn drop_conn(&mut self, token: usize) {
        let Some(slot) = token
            .checked_sub(TOK_BASE)
            .and_then(|i| self.conns.get_mut(i))
        else {
            return;
        };
        let Some(mut conn) = slot.take() else { return };
        if let Some(t) = conn.trace.take() {
            // The response never fully flushed; record the spans we have.
            self.shared.tracer.finish(t);
        }
        let _ = self.poller.deregister(sock_fd(&conn.stream), token);
        self.n_conns -= 1;
        self.shared
            .registry
            .gauge("serve.conns")
            .set(self.n_conns as f64);
        if let Some(key) = conn.awaiting {
            if let Some(waiters) = self.pending.get_mut(&key) {
                // The job stays in flight; only this connection's claim on
                // the result is withdrawn. The completion removes the entry.
                waiters.retain(|w| !(w.token == token && w.serial == conn.serial));
            }
        }
        self.free.push(token);
    }

    /// Stops accepting and marks every connection close-after-flush;
    /// in-flight scores and buffered responses still complete.
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self
            .poller
            .deregister(listener_fd(&self.listener), TOK_LISTENER);
        let tokens: Vec<usize> = (0..self.conns.len())
            .filter(|&i| self.conns[i].is_some())
            .map(|i| i + TOK_BASE)
            .collect();
        for token in tokens {
            if let Some(conn) = self.conn_mut(token) {
                conn.close_after_flush = true;
            }
            // Idle connections drop here; busy ones once their response
            // (and any pending score) flushes.
            self.flush_conn(token);
        }
    }

    /// Periodic deadline enforcement: read budget, write timeout,
    /// keep-alive idle.
    fn sweep(&mut self) {
        let now = Instant::now();
        let mut reject_read = Vec::new();
        let mut drop_dead = Vec::new();
        for (i, slot) in self.conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let token = i + TOK_BASE;
            if let Some(started) = conn.request_started {
                if now.saturating_duration_since(started) > self.shared.read_cap {
                    reject_read.push(token);
                    continue;
                }
            }
            if conn.has_backlog() {
                if let Some(ws) = conn.write_started {
                    if now.saturating_duration_since(ws) > self.shared.write_timeout {
                        drop_dead.push(token);
                    }
                }
            } else if conn.awaiting.is_none()
                && now.saturating_duration_since(conn.last_active) > KEEP_ALIVE_IDLE
            {
                drop_dead.push(token);
            }
        }
        for token in reject_read {
            self.shared.registry.counter("serve.http_errors").inc();
            if let Some(conn) = self.conn_mut(token) {
                conn.push_response(
                    &Response::error(408, "request read exceeded time budget"),
                    false,
                );
                conn.request_started = None;
            }
            self.flush_conn(token);
        }
        for token in drop_dead {
            self.drop_conn(token);
        }
    }
}
