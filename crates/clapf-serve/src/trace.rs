//! Request tracing glue: the serve-side stage vocabulary and the
//! `/debug/traces` + `/debug/slow` JSON endpoints.
//!
//! Both transports sample requests through one [`Tracer`] held in
//! [`crate::server::Shared`]: head-based, deterministic, one in
//! `--trace-sample` requests (0 disables tracing — the per-request cost is
//! then a single relaxed atomic load, see `results/BENCH_trace.json`).
//! A sampled request carries a [`clapf_telemetry::Trace`] through the
//! request state machine; its stages **tile** the request's wall clock —
//! parse, route/cache, score (or batch queue/score/wake), render, write —
//! so summing a trace's span durations recovers the request's total time.
//! Finished traces land in the tracer's lock-free ring (served by
//! `GET /debug/traces?n=`) and its slowest-K log (`GET /debug/slow`), and
//! their ids annotate `/metrics` latency buckets as OpenMetrics exemplars.

use crate::http::Response;
use clapf_telemetry::{intern_stage, JsonValue, Stage, Tracer};
use std::sync::OnceLock;

/// The interned stage vocabulary, resolved once per process.
pub(crate) struct Stages {
    /// Socket read + header parse of one request.
    pub parse: Stage,
    /// Routing work for endpoints that answer immediately.
    pub route: Stage,
    /// `/recommend` answered straight from the top-k cache.
    pub cache_hit: Stage,
    /// Cache probe that missed (ends where scoring begins).
    pub cache_lookup: Stage,
    /// Threaded-transport inline scoring (fields: score vs cut µs).
    pub score_compute: Stage,
    /// Threaded-transport wait on another request's in-flight score.
    pub score_wait: Stage,
    /// Event loop: job queued until its batch formed.
    pub batch_queue: Stage,
    /// Event loop: batch scoring (`scores_into_batch` + per-job cut).
    pub batch_score: Stage,
    /// Event loop: completion published until the loop fanned it out.
    pub batch_wake: Stage,
    /// Serializing the response body.
    pub render: Stage,
    /// Writing the response to the socket.
    pub write: Stage,
    /// Field: microseconds of the dense score sweep inside `score.compute`.
    pub f_score_us: Stage,
    /// Field: microseconds of the top-k cut inside `score.compute`.
    pub f_cut_us: Stage,
    /// Field: how many jobs shared the batch (on `batch.score`).
    pub f_batch: Stage,
}

/// The process-wide stage set (stage ids are global to the interner).
pub(crate) fn stages() -> &'static Stages {
    static STAGES: OnceLock<Stages> = OnceLock::new();
    STAGES.get_or_init(|| Stages {
        parse: intern_stage("req.parse"),
        route: intern_stage("req.route"),
        cache_hit: intern_stage("cache.hit"),
        cache_lookup: intern_stage("cache.lookup"),
        score_compute: intern_stage("score.compute"),
        score_wait: intern_stage("score.wait"),
        batch_queue: intern_stage("batch.queue"),
        batch_score: intern_stage("batch.score"),
        batch_wake: intern_stage("batch.wake"),
        render: intern_stage("req.render"),
        write: intern_stage("req.write"),
        f_score_us: intern_stage("score_us"),
        f_cut_us: intern_stage("cut_us"),
        f_batch: intern_stage("batch_size"),
    })
}

/// `GET /debug/traces?n=` — the `n` most recent finished traces (newest
/// first), read lock-free from the tracer's ring.
pub(crate) fn debug_traces(tracer: &Tracer, n: usize) -> Response {
    render_traces(tracer, tracer.recent(n))
}

/// `GET /debug/slow` — the slowest traces seen since startup.
pub(crate) fn debug_slow(tracer: &Tracer) -> Response {
    render_traces(tracer, tracer.slowest())
}

fn render_traces(tracer: &Tracer, traces: Vec<clapf_telemetry::FinishedTrace>) -> Response {
    Response::json(
        200,
        JsonValue::Obj(vec![
            (
                "sample_every".into(),
                JsonValue::UInt(tracer.sample_every()),
            ),
            ("count".into(), JsonValue::UInt(traces.len() as u64)),
            (
                "traces".into(),
                JsonValue::Arr(traces.iter().map(|t| t.to_json()).collect()),
            ),
        ])
        .render(),
    )
}
