//! Bundle-file watcher: polls the bundle path and hot-swaps on change.
//!
//! Polling (`fs::metadata` mtime + length) instead of inotify keeps the
//! crate std-only and portable. A change triggers a reload through the same
//! serialized path as `POST /reload`; a failed reload (half-written or
//! corrupt file) leaves the live model serving and is retried only when the
//! file changes again, so a persistently bad file does not spin the error
//! counter forever.

use crate::server::WatchCtx;
use std::time::{Duration, SystemTime};

/// One observation of the bundle file, used to detect change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Signature {
    mtime: Option<SystemTime>,
    len: u64,
}

fn observe(path: &std::path::Path) -> Option<Signature> {
    // Failpoint: an injected poll error reads as "file unobservable this
    // round" — the watcher must skip the round and keep serving, exactly
    // like a real transient stat failure.
    clapf_faults::check("serve.watch.poll").ok()?;
    let meta = std::fs::metadata(path).ok()?;
    Some(Signature {
        mtime: meta.modified().ok(),
        len: meta.len(),
    })
}

/// Runs until shutdown: every `poll`, compare the bundle file's signature to
/// the last seen one and reload on change.
pub(crate) fn watch_bundle(ctx: &WatchCtx, poll: Duration) {
    let mut last_seen = observe(ctx.bundle_path());
    let mut last_failed: Option<Signature> = None;
    // Sleep in small steps so shutdown is prompt even with long polls.
    let step = poll.min(Duration::from_millis(100)).max(Duration::from_millis(1));
    let mut since_poll = Duration::ZERO;
    loop {
        if ctx.is_shutting_down() {
            return;
        }
        std::thread::sleep(step);
        since_poll += step;
        if since_poll < poll {
            continue;
        }
        since_poll = Duration::ZERO;

        let now = observe(ctx.bundle_path());
        if now.is_none() || now == last_seen || now == last_failed {
            continue;
        }
        match ctx.reload() {
            Ok(_) => {
                last_seen = now;
                last_failed = None;
            }
            Err(_) => {
                // Keep serving the old model; retry only if the file changes
                // again (a half-written file will, once the writer finishes).
                last_failed = now;
            }
        }
    }
}
