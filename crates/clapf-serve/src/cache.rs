//! A sharded, generation-stamped top-k cache.
//!
//! The cache maps `(user, k)` to a ranked item list. Two properties matter
//! more than hit rate:
//!
//! * **Generation safety.** Every entry is stamped with the model generation
//!   it was computed under. A lookup supplies the generation of the model
//!   the caller has already pinned; an entry from another generation is a
//!   miss. After a hot-swap the publisher bumps the cache's current
//!   generation, which atomically invalidates every older entry — no
//!   scan, no flush, no window where a stale list can be served. `put`
//!   double-checks the stamp against the current generation so a slow
//!   writer that computed under the old model cannot resurrect it.
//! * **Low contention.** Entries are spread over `N` independently locked
//!   shards by a multiplicative hash of the user id, so concurrent readers
//!   on different users rarely touch the same mutex.
//!
//! Eviction is LRU per shard via a monotone use-tick; capacity 0 disables
//! the cache entirely (every lookup is a miss, every insert a no-op), which
//! is how the load generator measures the uncached baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Key: dense user id and requested list length.
type Key = (u32, usize);

/// In-flight computations are keyed by (user, k, generation): a result is
/// only shareable among requests that pinned the same model generation.
type FlightKey = (u32, usize, u64);

/// How a [`TopKCache::get_or_compute`] call obtained its list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Computed by this call (the coalescing leader, or uncontended).
    Miss,
    /// Awaited a concurrent computation of the same key.
    Coalesced,
}

enum FlightState {
    Pending,
    Done(Arc<Vec<u32>>),
    /// The leader dropped (panicked) without completing; followers fall
    /// back to computing for themselves.
    Failed,
}

struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

/// Longest a follower waits on a leader before falling back to computing
/// for itself — one score sweep takes milliseconds, so this only fires if
/// the leader is wedged (e.g. by an injected delay fault).
const FLIGHT_WAIT: Duration = Duration::from_secs(10);

struct Entry {
    generation: u64,
    last_used: u64,
    items: Arc<Vec<u32>>,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Entry>,
    tick: u64,
}

/// Sharded top-k result cache with generation-stamped entries.
pub struct TopKCache {
    shards: Vec<Mutex<Shard>>,
    generation: AtomicU64,
    per_shard_capacity: usize,
    /// Computations currently in flight, for miss coalescing — see
    /// [`TopKCache::get_or_compute`].
    in_flight: Mutex<HashMap<FlightKey, Arc<Flight>>>,
}

impl TopKCache {
    /// Creates a cache holding at most `capacity` entries spread over
    /// `shards` locks (both rounded up to at least 1 shard; capacity 0
    /// disables caching).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n_shards = shards.max(1);
        TopKCache {
            shards: (0..n_shards).map(|_| Mutex::new(Shard::default())).collect(),
            generation: AtomicU64::new(0),
            per_shard_capacity: capacity.div_ceil(n_shards) * usize::from(capacity > 0),
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    /// The current model generation. Entries stamped lower are dead.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidates every entry of the previous generation by advancing the
    /// current one. Called by the hot-swap publisher *after* the new model
    /// is visible, and returns the new generation.
    pub fn bump_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    fn shard(&self, user: u32) -> &Mutex<Shard> {
        // Fibonacci-style multiplicative hash: user ids are dense and
        // sequential, so modulo alone would stripe poorly.
        let h = (u64::from(user)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Looks up `(user, k)` computed under generation `generation`.
    /// Entries from any other generation are treated as absent.
    pub fn get(&self, user: u32, k: usize, generation: u64) -> Option<Arc<Vec<u32>>> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let mut shard = self.shard(user).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(&(user, k))?;
        if entry.generation != generation {
            return None;
        }
        entry.last_used = tick;
        Some(Arc::clone(&entry.items))
    }

    /// Inserts a list computed under `generation`. Discarded when that is no
    /// longer the current generation — the result was computed against a
    /// model that has since been swapped out.
    pub fn put(&self, user: u32, k: usize, generation: u64, items: Arc<Vec<u32>>) {
        if self.per_shard_capacity == 0 || generation != self.generation() {
            return;
        }
        let mut shard = self.shard(user).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&(user, k)) {
            // Evict the least-recently used entry; stale-generation entries
            // are ideal victims, so prefer them regardless of age.
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| (e.generation == generation, e.last_used))
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(
            (user, k),
            Entry {
                generation,
                last_used: tick,
                items,
            },
        );
    }

    /// Looks up `(user, k)` under `generation`, computing (and inserting)
    /// the list on a miss — with **miss coalescing**: when N threads miss
    /// the same key concurrently, exactly one runs `compute` and the other
    /// N−1 block until its result is ready, instead of each sweeping the
    /// full item table (the classic miss-stampede on a hot user right
    /// after a generation bump).
    ///
    /// Safety valves: a leader that panics (or is wedged past an internal
    /// timeout) releases its followers, which then compute for themselves —
    /// coalescing can delay a correct answer but never lose one. With the
    /// cache disabled (capacity 0) there is no miss to coalesce by
    /// definition: every call computes.
    pub fn get_or_compute<F>(
        &self,
        user: u32,
        k: usize,
        generation: u64,
        compute: F,
    ) -> (Arc<Vec<u32>>, CacheOutcome)
    where
        F: FnOnce() -> Arc<Vec<u32>>,
    {
        if self.per_shard_capacity == 0 {
            return (compute(), CacheOutcome::Miss);
        }
        if let Some(items) = self.get(user, k, generation) {
            return (items, CacheOutcome::Hit);
        }
        let key = (user, k, generation);
        let (flight, leader) = {
            let mut map = self.in_flight.lock().expect("in-flight map poisoned");
            match map.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        done: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if leader {
            // Completion guard: if `compute` panics, followers are failed
            // over (they recompute) instead of waiting forever, and the
            // key is freed for the next attempt.
            struct Abort<'a> {
                cache: &'a TopKCache,
                key: FlightKey,
                flight: &'a Arc<Flight>,
                completed: bool,
            }
            impl Drop for Abort<'_> {
                fn drop(&mut self) {
                    if !self.completed {
                        *self.flight.state.lock().expect("flight poisoned") =
                            FlightState::Failed;
                        self.flight.done.notify_all();
                        self.cache
                            .in_flight
                            .lock()
                            .expect("in-flight map poisoned")
                            .remove(&self.key);
                    }
                }
            }
            let mut guard = Abort {
                cache: self,
                key,
                flight: &flight,
                completed: false,
            };
            let items = compute();
            self.put(user, k, generation, Arc::clone(&items));
            *flight.state.lock().expect("flight poisoned") =
                FlightState::Done(Arc::clone(&items));
            flight.done.notify_all();
            self.in_flight
                .lock()
                .expect("in-flight map poisoned")
                .remove(&key);
            guard.completed = true;
            (items, CacheOutcome::Miss)
        } else {
            let mut state = flight.state.lock().expect("flight poisoned");
            loop {
                match &*state {
                    FlightState::Done(items) => {
                        return (Arc::clone(items), CacheOutcome::Coalesced)
                    }
                    FlightState::Failed => break,
                    FlightState::Pending => {
                        let (guard, timeout) = flight
                            .done
                            .wait_timeout(state, FLIGHT_WAIT)
                            .expect("flight poisoned");
                        state = guard;
                        if timeout.timed_out() && matches!(*state, FlightState::Pending) {
                            break; // leader wedged: fail over to self-compute
                        }
                    }
                }
            }
            drop(state);
            let items = compute();
            self.put(user, k, generation, Arc::clone(&items));
            (items, CacheOutcome::Miss)
        }
    }

    /// Number of live entries across all shards (any generation).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[u32]) -> Arc<Vec<u32>> {
        Arc::new(items.to_vec())
    }

    #[test]
    fn hit_after_put_same_generation() {
        let c = TopKCache::new(16, 4);
        let g = c.generation();
        assert!(c.get(7, 10, g).is_none());
        c.put(7, 10, g, list(&[3, 1, 2]));
        assert_eq!(c.get(7, 10, g).as_deref(), Some(&vec![3, 1, 2]));
        // Different k is a different key.
        assert!(c.get(7, 5, g).is_none());
    }

    #[test]
    fn bump_invalidates_all_prior_entries() {
        let c = TopKCache::new(16, 4);
        let g0 = c.generation();
        c.put(1, 10, g0, list(&[9]));
        let g1 = c.bump_generation();
        assert_eq!(g1, g0 + 1);
        // The old entry is dead under the new generation…
        assert!(c.get(1, 10, g1).is_none());
        // …while a reader that still pins the old model can keep hitting it
        // (the list is consistent with the model that reader holds).
        assert_eq!(c.get(1, 10, g0).as_deref(), Some(&vec![9]));
        // A fresh entry under g1 works.
        c.put(1, 10, g1, list(&[4]));
        assert_eq!(c.get(1, 10, g1).as_deref(), Some(&vec![4]));
    }

    #[test]
    fn put_from_stale_generation_is_discarded() {
        let c = TopKCache::new(16, 4);
        let g0 = c.generation();
        let g1 = c.bump_generation();
        // A slow writer that computed under g0 must not insert.
        c.put(2, 10, g0, list(&[1]));
        assert!(c.get(2, 10, g0).is_none());
        assert!(c.get(2, 10, g1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let c = TopKCache::new(0, 4);
        let g = c.generation();
        c.put(1, 10, g, list(&[1]));
        assert!(c.get(1, 10, g).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used_within_a_shard() {
        // One shard makes eviction order deterministic.
        let c = TopKCache::new(2, 1);
        let g = c.generation();
        c.put(1, 10, g, list(&[1]));
        c.put(2, 10, g, list(&[2]));
        // Touch user 1 so user 2 becomes the LRU victim.
        assert!(c.get(1, 10, g).is_some());
        c.put(3, 10, g, list(&[3]));
        assert_eq!(c.len(), 2);
        assert!(c.get(1, 10, g).is_some());
        assert!(c.get(2, 10, g).is_none());
        assert!(c.get(3, 10, g).is_some());
    }

    #[test]
    fn stale_entries_are_preferred_eviction_victims() {
        let c = TopKCache::new(2, 1);
        let g0 = c.generation();
        c.put(1, 10, g0, list(&[1]));
        let g1 = c.bump_generation();
        c.put(2, 10, g1, list(&[2]));
        // Shard is full: one stale (user 1, g0) and one live entry. The
        // stale one must go even though it is not the oldest by tick order
        // after touching it is impossible (it is dead anyway).
        c.put(3, 10, g1, list(&[3]));
        assert!(c.get(2, 10, g1).is_some());
        assert!(c.get(3, 10, g1).is_some());
    }

    #[test]
    fn stampede_coalesces_to_one_compute() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = Arc::new(TopKCache::new(64, 4));
        let g = c.generation();
        let computes = Arc::new(AtomicUsize::new(0));
        let entered = Arc::new(std::sync::Barrier::new(8));
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let computes = Arc::clone(&computes);
                let entered = Arc::clone(&entered);
                handles.push(s.spawn(move || {
                    entered.wait();
                    c.get_or_compute(42, 10, g, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so every other thread is
                        // parked on the flight before the leader finishes.
                        std::thread::sleep(Duration::from_millis(50));
                        list(&[1, 2, 3])
                    })
                }));
            }
            let outcomes: Vec<CacheOutcome> = handles
                .into_iter()
                .map(|h| {
                    let (items, outcome) = h.join().unwrap();
                    assert_eq!(&*items, &vec![1, 2, 3]);
                    outcome
                })
                .collect();
            // Exactly one thread scored; everyone else hit, coalesced, or
            // (if it arrived after completion) read the cache.
            assert_eq!(computes.load(Ordering::SeqCst), 1, "{outcomes:?}");
            assert_eq!(
                outcomes
                    .iter()
                    .filter(|o| **o == CacheOutcome::Miss)
                    .count(),
                1,
                "{outcomes:?}"
            );
        });
    }

    #[test]
    fn leader_panic_releases_followers() {
        let c = Arc::new(TopKCache::new(64, 4));
        let g = c.generation();
        let c2 = Arc::clone(&c);
        let leader = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(7, 10, g, || {
                    std::thread::sleep(Duration::from_millis(100));
                    panic!("injected leader failure");
                })
            }));
        });
        // Let the leader claim the flight, then follow it into the crash.
        std::thread::sleep(Duration::from_millis(20));
        let (items, outcome) = c.get_or_compute(7, 10, g, || list(&[9]));
        leader.join().unwrap();
        // The follower recovered by computing for itself.
        assert_eq!(&*items, &vec![9]);
        assert_eq!(outcome, CacheOutcome::Miss);
        // And the key is not wedged for future calls.
        assert_eq!(c.get(7, 10, g).as_deref(), Some(&vec![9]));
    }

    #[test]
    fn get_or_compute_disabled_cache_always_computes() {
        let c = TopKCache::new(0, 1);
        let (items, outcome) = c.get_or_compute(1, 5, 0, || list(&[4]));
        assert_eq!(&*items, &vec![4]);
        assert_eq!(outcome, CacheOutcome::Miss);
        let (_, outcome) = c.get_or_compute(1, 5, 0, || list(&[4]));
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        let c = Arc::new(TopKCache::new(1024, 8));
        let g = c.generation();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for u in 0..200u32 {
                        let user = t * 1000 + u;
                        c.put(user, 10, g, list(&[user]));
                        assert_eq!(c.get(user, 10, g).as_deref(), Some(&vec![user]));
                    }
                });
            }
        });
        assert_eq!(c.len(), 800);
    }
}
