//! Cross-request micro-batched scoring.
//!
//! Concurrent `/recommend` cache misses do not each sweep the item table:
//! the event transport queues a [`ScoreJob`] per distinct key and a small
//! scorer pool drains the queue in blocks of up to `batch_max` users
//! through [`clapf_metrics::BulkScorer::scores_into_batch`] — the blocked
//! (and on x86-64, AVX2 4-user register-blocked) kernel that streams the
//! item table through cache once per block instead of once per request.
//!
//! Invariants:
//!
//! * **Generation purity.** A batch never mixes model generations. Jobs
//!   carry the `Arc<ServingModel>` their request pinned; batch formation
//!   stops at the first job whose generation differs from the front of the
//!   queue. Across a hot-swap, in-flight jobs drain on the old generation
//!   (the `Arc` keeps that model alive) and the next batch starts on the
//!   new one — so a batched answer is always exactly what single-request
//!   scoring under the same pinned model would produce.
//! * **Bounded hold.** A scorer that finds fewer than `batch_max` jobs may
//!   wait at most `batch_hold` for stragglers, so light-load p99 pays a
//!   bounded, configurable premium (default 100µs) for batching.
//! * **Panic isolation at batch granularity.** Scoring runs under
//!   `catch_unwind`; a panic fails that batch's requests with a 500 and a
//!   `serve.panics` count, and the scorer thread survives. The
//!   `serve.batch.flush` failpoint injects errors/panics here.
//!
//! Batch identity with the single-request path is structural: the
//! `BulkScorer` contract says `scores_into_batch` "must produce exactly
//! the scores `scores_into` would", and the top-k cut below is the same
//! [`clapf_metrics::top_k_from_scores`] everything else uses.

use crate::model::ServingModel;
use clapf_metrics::BulkScorer;
use clapf_telemetry::Histogram;
use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Identity of one scoring computation: dense user, list length, and the
/// model generation it must be computed under. `seq` is 0 whenever results
/// are shareable (cache enabled); with the cache disabled each request gets
/// a unique `seq` so keys never coalesce and every request is scored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct ScoreKey {
    /// Dense user id.
    pub user: u32,
    /// Requested list length.
    pub k: usize,
    /// Generation of the pinned model.
    pub generation: u64,
    /// Uniqueness salt (0 = coalescible).
    pub seq: u64,
}

/// One queued scoring request.
pub(crate) struct ScoreJob {
    /// What to compute.
    pub key: ScoreKey,
    /// The model the request pinned; keeps the generation alive across a
    /// hot-swap until the batch drains.
    pub model: Arc<ServingModel>,
    /// When the job entered the queue (feeds `serve.batch.hold_us`).
    pub enqueued: Instant,
}

/// When one batched computation's phases happened, fanned back with the
/// completion so every waiter's trace can attribute queue wait vs. scoring
/// (the spans land on *each* member request of the batch).
#[derive(Clone, Copy)]
pub(crate) struct BatchTiming {
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// When the scorer pulled the batch (queue wait + bounded hold end).
    pub formed: Instant,
    /// When scoring (sweep + per-job cut) finished.
    pub scored: Instant,
    /// How many jobs shared the batch.
    pub size: usize,
}

/// A finished scoring computation, fanned back to waiting connections by
/// the event loop.
pub(crate) struct Completion {
    /// The key the result answers.
    pub key: ScoreKey,
    /// Top-k dense item ids, or `None` when scoring failed.
    pub items: Option<Arc<Vec<u32>>>,
    /// Failure detail for the 500 body when `items` is `None`.
    pub error: &'static str,
    /// Phase clock for traced waiters, stamped by the scorer loop after
    /// the batch (success or failure) resolves.
    pub timing: Option<BatchTiming>,
}

struct Queue {
    jobs: VecDeque<ScoreJob>,
    shutdown: bool,
}

/// The scorer-pool front: a bounded job queue, a completion list the event
/// loop drains, and a loopback waker that interrupts its poller wait.
pub(crate) struct Batcher {
    queue: Mutex<Queue>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Write end of the transport's loopback waker socket; one byte per
    /// completion flush interrupts the poller wait.
    waker: Mutex<TcpStream>,
    batch_max: usize,
    batch_hold: Duration,
}

impl Batcher {
    pub fn new(waker: TcpStream, batch_max: usize, batch_hold: Duration) -> Batcher {
        Batcher {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker: Mutex::new(waker),
            batch_max: batch_max.max(1),
            batch_hold,
        }
    }

    /// Jobs currently queued (the transport's pending-bound check).
    pub fn queue_len(&self) -> usize {
        self.queue.lock().expect("score queue poisoned").jobs.len()
    }

    /// Queues one job and wakes a scorer.
    pub fn enqueue(&self, job: ScoreJob) {
        self.queue
            .lock()
            .expect("score queue poisoned")
            .jobs
            .push_back(job);
        self.available.notify_one();
    }

    /// Tells scorer threads to exit once the queue is empty.
    pub fn begin_shutdown(&self) {
        self.queue.lock().expect("score queue poisoned").shutdown = true;
        self.available.notify_all();
    }

    /// Takes every completion accumulated since the last call.
    pub fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("completions poisoned"))
    }

    fn publish(&self, batch: Vec<Completion>) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .extend(batch);
        // Nonblocking write; a full pipe means a wake is already pending.
        let _ = self.waker.lock().expect("waker poisoned").write(&[1]);
    }

    /// Pulls the next generation-pure batch, blocking until work arrives or
    /// shutdown drains the queue. `None` means "exit the scorer thread".
    fn next_batch(&self) -> Option<Vec<ScoreJob>> {
        let mut q = self.queue.lock().expect("score queue poisoned");
        loop {
            if !q.jobs.is_empty() {
                break;
            }
            if q.shutdown {
                return None;
            }
            q = self.available.wait(q).expect("score queue poisoned");
        }
        let generation = q.jobs.front().expect("nonempty queue").key.generation;
        let mut batch = Vec::with_capacity(self.batch_max);
        let take_matching = |q: &mut Queue, batch: &mut Vec<ScoreJob>, cap: usize| {
            while batch.len() < cap {
                match q.jobs.front() {
                    Some(job) if job.key.generation == generation => {
                        batch.push(q.jobs.pop_front().expect("front exists"));
                    }
                    _ => break,
                }
            }
        };
        take_matching(&mut q, &mut batch, self.batch_max);
        // Bounded hold: wait briefly for stragglers to fill the batch, but
        // never past the deadline and never across a shutdown. The deadline
        // runs from the *oldest job's arrival*, not from batch formation:
        // under load, jobs already waited out their hold while the scorer
        // was busy, so a saturated scorer never idles; only a genuinely
        // lone request under light load pays the (bounded) wait.
        if batch.len() < self.batch_max && !self.batch_hold.is_zero() {
            let deadline = batch[0].enqueued + self.batch_hold;
            while batch.len() < self.batch_max && !q.shutdown {
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, timed_out) = self
                    .available
                    .wait_timeout(q, left)
                    .expect("score queue poisoned");
                q = guard;
                take_matching(&mut q, &mut batch, self.batch_max);
                if timed_out.timed_out() {
                    break;
                }
            }
        }
        Some(batch)
    }
}

fn batch_size_histogram() -> Histogram {
    // 1 … 32+ users in ×2 steps.
    Histogram::exponential(1.0, 2.0, 6)
}

fn batch_hold_histogram() -> Histogram {
    // 1µs … ~1ms in ×2 steps, plus overflow.
    Histogram::exponential(1.0, 2.0, 10)
}

/// The scorer-thread body: drain batches until shutdown empties the queue.
pub(crate) fn scorer_loop(batcher: Arc<Batcher>, shared: Arc<crate::server::Shared>) {
    let mut score_bufs: Vec<Vec<f32>> = (0..batcher.batch_max).map(|_| Vec::new()).collect();
    let mut items_scratch = Vec::new();
    while let Some(batch) = batcher.next_batch() {
        if batch.is_empty() {
            continue;
        }
        shared
            .registry
            .histogram("serve.batch.size", batch_size_histogram)
            .record(batch.len() as f64);
        let now = Instant::now();
        let hold = shared
            .registry
            .histogram("serve.batch.hold_us", batch_hold_histogram);
        for job in &batch {
            hold.record(now.saturating_duration_since(job.enqueued).as_micros() as f64);
        }
        let mut completions = score_batch(&shared, &batch, &mut score_bufs, &mut items_scratch);
        let scored = Instant::now();
        for (c, job) in completions.iter_mut().zip(&batch) {
            c.timing = Some(BatchTiming {
                enqueued: job.enqueued,
                formed: now,
                scored,
                size: batch.len(),
            });
        }
        batcher.publish(completions);
    }
}

/// Scores one generation-pure batch, with failpoint + panic isolation.
fn score_batch(
    shared: &crate::server::Shared,
    batch: &[ScoreJob],
    score_bufs: &mut [Vec<f32>],
    items_scratch: &mut Vec<clapf_data::ItemId>,
) -> Vec<Completion> {
    let fail = |error: &'static str| {
        batch
            .iter()
            .map(|job| Completion {
                key: job.key,
                items: None,
                error,
                timing: None,
            })
            .collect::<Vec<_>>()
    };
    // Failpoint: tests inject I/O errors (typed 500s for the whole batch)
    // and panics (exercising batch-granular catch_unwind isolation) here.
    if clapf_faults::check("serve.batch.flush").is_err() {
        shared.registry.counter("serve.batch.faults").inc();
        return fail("batch scoring fault injected");
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let model = &batch[0].model;
        // Distinct users only: duplicate users in one batch (same user at
        // different k, or uncoalesced cache-off traffic) share one sweep.
        let mut users: Vec<clapf_data::UserId> = Vec::with_capacity(batch.len());
        let mut user_idx = Vec::with_capacity(batch.len());
        for job in batch {
            let u = clapf_data::UserId(job.key.user);
            match users.iter().position(|&v| v == u) {
                Some(i) => user_idx.push(i),
                None => {
                    users.push(u);
                    user_idx.push(users.len() - 1);
                }
            }
        }
        model
            .bundle
            .model
            .scores_into_batch(&users, &mut score_bufs[..users.len()]);
        batch
            .iter()
            .zip(&user_idx)
            .map(|(job, &idx)| {
                let u = clapf_data::UserId(job.key.user);
                clapf_metrics::top_k_from_scores(
                    &score_bufs[idx],
                    &model.train,
                    u,
                    job.key.k,
                    items_scratch,
                );
                let items: Arc<Vec<u32>> =
                    Arc::new(items_scratch.iter().map(|i| i.0).collect());
                shared
                    .cache
                    .put(job.key.user, job.key.k, job.key.generation, Arc::clone(&items));
                Completion {
                    key: job.key,
                    items: Some(items),
                    error: "",
                    timing: None, // filled by the scorer loop post-batch
                }
            })
            .collect::<Vec<_>>()
    }));
    match result {
        Ok(completions) => completions,
        Err(_) => {
            shared.registry.counter("serve.panics").inc();
            fail("internal error: batch scorer panicked")
        }
    }
}
