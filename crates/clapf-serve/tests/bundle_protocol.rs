//! The replica half of the fleet rollout protocol (ISSUE 9): staging a
//! candidate bundle off to the side, fingerprint-verified commit, abort
//! with revert to the previous bundle, and adoption of router-propagated
//! trace ids. Failpoint tests serialize on `clapf_faults::exclusive()`.

use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_data::ItemId;
use clapf_mf::{Init, MfModel};
use clapf_serve::{fingerprint64, start, ModelBundle, ServeConfig};
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- fixtures

/// Same shape as the integration fixture: item biases order the catalog,
/// `slope` flips between bundles so A and B rank in opposite orders.
fn bundle(slope: f32, tag: &str) -> ModelBundle {
    let csv = "\
u1,i0,5\nu1,i1,5\n\
u2,i1,4\nu2,i2,5\n\
u3,i3,5\n\
u4,i0,4\nu4,i5,5\n";
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        2,
        Init::Zeros,
        &mut rng,
    );
    for i in 0..loaded.interactions.n_items() {
        *model.bias_mut(ItemId(i)) = slope * (i as f32 + 1.0);
    }
    ModelBundle::new(format!("fixture-{tag}"), model, loaded.ids, &loaded.interactions)
}

fn temp_bundle_file(tag: &str, b: &ModelBundle) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapf-serve-bp-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.json");
    b.save(&path).unwrap();
    path
}

fn with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.to_path_buf().into_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

fn file_fingerprint(path: &Path) -> String {
    format!("{:016x}", fingerprint64(&std::fs::read(path).unwrap()))
}

// ---------------------------------------------------------- tiny TCP client

/// One-shot request with optional extra header lines; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, extra: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}Connection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path, "")
}

fn post(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "POST", path, "")
}

// ------------------------------------------------------------ JSON helpers

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no field {key:?} in {v:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

fn str_of(body: &str, key: &str) -> String {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, key) {
        Value::Str(s) => s.clone(),
        other => panic!("{key} is not a string: {other:?}"),
    }
}

fn uint_of(body: &str, key: &str) -> u64 {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, key) {
        Value::Int(n) => u64::try_from(*n).expect("non-negative"),
        Value::UInt(n) => *n,
        other => panic!("{key} is not an integer: {other:?}"),
    }
}

fn items_of(body: &str) -> Vec<String> {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, "items") {
        Value::Seq(xs) => xs
            .iter()
            .map(|x| match x {
                Value::Str(s) => s.clone(),
                other => panic!("non-string item {other:?}"),
            })
            .collect(),
        other => panic!("items is not an array: {other:?}"),
    }
}

fn start_server(path: PathBuf, config: ServeConfig) -> clapf_serve::ServerHandle {
    start(path, config, Arc::new(Registry::new())).expect("server starts")
}

// ------------------------------------------------------------------- tests

#[test]
fn fingerprints_flow_from_disk_to_healthz_and_probe() {
    let a = bundle(1.0, "fp");
    let path = temp_bundle_file("fp", &a);
    let fp_a = file_fingerprint(&path);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "bare-200 contract: {body}");
    assert_eq!(str_of(&body, "fingerprint"), fp_a);

    let (status, body) = get(addr, "/bundle/fingerprint");
    assert_eq!(status, 200);
    assert_eq!(str_of(&body, "fingerprint"), fp_a);
    assert_eq!(uint_of(&body, "generation"), 0);
    assert!(body.contains("\"staged\":null"), "nothing staged: {body}");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn stage_commit_flips_and_abort_reverts_fleet_protocol() {
    let a = bundle(1.0, "cycle-a");
    let b = bundle(-1.0, "cycle-b");
    let path = temp_bundle_file("cycle", &a);
    let next = with_suffix(&path, ".next");
    b.save(&next).unwrap();
    let fp_a = file_fingerprint(&path);
    let fp_b = file_fingerprint(&next);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    // Phase-2 guard rails before phase 1 ran.
    assert_eq!(post(addr, "/bundle/commit").0, 400, "fingerprint required");
    assert_eq!(
        post(addr, &format!("/bundle/commit?fingerprint={fp_b}")).0,
        409,
        "commit with nothing staged must conflict"
    );

    // Phase 1: stage loads + validates off to the side; serving unchanged.
    let (status, body) = post(addr, "/bundle/stage");
    assert_eq!(status, 200, "{body}");
    assert_eq!(str_of(&body, "fingerprint"), fp_b);
    let (_, probe) = get(addr, "/bundle/fingerprint");
    assert_eq!(str_of(&probe, "staged"), fp_b);
    assert_eq!(str_of(&probe, "fingerprint"), fp_a, "live model untouched");
    let (_, r) = get(addr, "/recommend/u3?k=4");
    assert_eq!(items_of(&r), a.recommend_raw("u3", 4).unwrap());

    // A commit naming the wrong fingerprint (torn-rollout guard) conflicts.
    assert_eq!(
        post(addr, &format!("/bundle/commit?fingerprint={fp_a}")).0,
        409
    );

    // Phase 2: commit flips to the staged bundle under a fresh generation.
    let (status, body) = post(addr, &format!("/bundle/commit?fingerprint={fp_b}"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(uint_of(&body, "generation"), 1);
    assert_eq!(str_of(&body, "fingerprint"), fp_b);
    let (_, health) = get(addr, "/healthz");
    assert_eq!(str_of(&health, "fingerprint"), fp_b);
    let (_, r) = get(addr, "/recommend/u3?k=4");
    assert_eq!(items_of(&r), b.recommend_raw("u3", 4).unwrap());
    assert_eq!(uint_of(&r, "generation"), 1);
    // Disk state after commit: live path holds B, `.prev` preserves A.
    assert_eq!(file_fingerprint(&path), fp_b);
    assert_eq!(file_fingerprint(&with_suffix(&path, ".prev")), fp_a);
    assert!(!next.exists(), ".next consumed by the commit rename");

    // Abort naming the now-live fingerprint reverts to the previous bundle
    // under a fresh generation (never a reused one — cache coherence).
    let (status, body) = post(addr, &format!("/bundle/abort?fingerprint={fp_b}"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(str_of(&body, "fingerprint"), fp_a);
    assert_eq!(uint_of(&body, "generation"), 2);
    assert_eq!(file_fingerprint(&path), fp_a, "disk restored");
    let (_, r) = get(addr, "/recommend/u3?k=4");
    assert_eq!(items_of(&r), a.recommend_raw("u3", 4).unwrap());
    assert_eq!(uint_of(&r, "generation"), 2);

    // An abort naming a fingerprint that is neither staged nor live is a
    // no-op acknowledgement — it must not revert anything.
    let (status, body) = post(addr, "/bundle/abort?fingerprint=dead");
    assert_eq!(status, 200, "{body}");
    assert_eq!(str_of(&body, "fingerprint"), fp_a);

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn stage_without_next_file_rejects_and_keeps_serving() {
    let a = bundle(1.0, "nonext");
    let path = temp_bundle_file("nonext", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    assert_eq!(post(addr, "/bundle/stage").0, 500);
    let (status, _) = get(addr, "/recommend/u1?k=3");
    assert_eq!(status, 200, "failed stage must not disturb serving");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn stage_and_commit_failpoints_fail_clean_and_retry() {
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "fault-a");
    let b = bundle(-1.0, "fault-b");
    let path = temp_bundle_file("fault", &a);
    b.save(&with_suffix(&path, ".next")).unwrap();
    let fp_b = file_fingerprint(&with_suffix(&path, ".next"));
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    clapf_faults::arm_nth("serve.bundle.stage", clapf_faults::Fault::Io, 0, Some(1));
    assert_eq!(post(addr, "/bundle/stage").0, 500);
    assert!(clapf_faults::hits("serve.bundle.stage") >= 1);
    assert_eq!(post(addr, "/bundle/stage").0, 200, "stage retries clean");

    clapf_faults::arm_nth("serve.bundle.commit", clapf_faults::Fault::Io, 0, Some(1));
    assert_eq!(
        post(addr, &format!("/bundle/commit?fingerprint={fp_b}")).0,
        500
    );
    // The staged bundle survives a failed commit, so the driver can retry.
    let (_, probe) = get(addr, "/bundle/fingerprint");
    assert_eq!(str_of(&probe, "staged"), fp_b);
    assert_eq!(
        post(addr, &format!("/bundle/commit?fingerprint={fp_b}")).0,
        200
    );
    clapf_faults::reset();

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn propagated_trace_ids_are_adopted_but_never_force_tracing() {
    let a = bundle(1.0, "traceid");
    let path = temp_bundle_file("traceid", &a);

    // Tracing on: the router-propagated id shows up verbatim in the ring.
    let server = start_server(
        path.clone(),
        ServeConfig {
            trace_sample: 1,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let (status, _) = http(
        addr,
        "GET",
        "/recommend/u1?k=3",
        "X-Clapf-Trace: abcdef0123456789\r\n",
    );
    assert_eq!(status, 200);
    let (_, traces) = get(addr, "/debug/traces?n=8");
    assert!(
        traces.contains("abcdef0123456789"),
        "adopted id missing from /debug/traces: {traces}"
    );
    server.shutdown();

    // Tracing off: the header must not conjure traces out of thin air.
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();
    let (status, _) = http(
        addr,
        "GET",
        "/recommend/u1?k=3",
        "X-Clapf-Trace: abcdef0123456789\r\n",
    );
    assert_eq!(status, 200);
    let (_, traces) = get(addr, "/debug/traces?n=8");
    assert!(
        !traces.contains("abcdef0123456789"),
        "id adopted with tracing disabled: {traces}"
    );
    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
