//! End-to-end tests: real servers on ephemeral ports, real TCP clients.
//!
//! The acceptance bar (ISSUE 4): served lists are bit-identical to the
//! offline ranking for the same user; `/metrics` exposes request, latency
//! and cache series; a hot-swap under concurrent load never yields a torn
//! model or a stale cached list.

use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_data::ItemId;
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig};
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- fixtures

/// 4 users × 6 items with enough held-out items per user for ranking to
/// have room. Item biases order the catalog; `slope` flips between
/// fixtures so "bundle A" and "bundle B" rank in opposite orders.
fn bundle(slope: f32, tag: &str) -> ModelBundle {
    let csv = "\
u1,i0,5\nu1,i1,5\n\
u2,i1,4\nu2,i2,5\n\
u3,i3,5\n\
u4,i0,4\nu4,i5,5\n";
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        2,
        Init::Zeros,
        &mut rng,
    );
    for i in 0..loaded.interactions.n_items() {
        *model.bias_mut(ItemId(i)) = slope * (i as f32 + 1.0);
    }
    ModelBundle::new(format!("fixture-{tag}"), model, loaded.ids, &loaded.interactions)
}

fn temp_bundle_file(tag: &str, b: &ModelBundle) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapf-serve-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.json");
    b.save(&path).unwrap();
    path
}

/// The offline answer the server must reproduce bit-identically.
fn offline_top_k(b: &ModelBundle, raw_user: &str, k: usize) -> Vec<String> {
    b.recommend_raw(raw_user, k).unwrap()
}

// ---------------------------------------------------------- tiny TCP client

/// One-shot request; returns (status, body). `Connection: close` keeps the
/// client trivial — the response ends at EOF.
fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path)
}

fn post(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "POST", path)
}

// ------------------------------------------------------------ JSON helpers

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no field {key:?} in {v:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

fn items_of(body: &str) -> Vec<String> {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, "items") {
        Value::Seq(xs) => xs
            .iter()
            .map(|x| match x {
                Value::Str(s) => s.clone(),
                other => panic!("non-string item {other:?}"),
            })
            .collect(),
        other => panic!("items is not an array: {other:?}"),
    }
}

fn uint_of(body: &str, key: &str) -> u64 {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, key) {
        Value::Int(n) => u64::try_from(*n).expect("non-negative"),
        Value::UInt(n) => *n,
        other => panic!("{key} is not an integer: {other:?}"),
    }
}

fn bool_of(body: &str, key: &str) -> bool {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, key) {
        Value::Bool(b) => *b,
        other => panic!("{key} is not a bool: {other:?}"),
    }
}

fn start_server(path: PathBuf, config: ServeConfig) -> clapf_serve::ServerHandle {
    start(path, config, Arc::new(Registry::new())).expect("server starts")
}

// ------------------------------------------------------------------- tests

#[test]
fn recommend_matches_offline_evaluator_bit_for_bit() {
    let b = bundle(1.0, "bitident");
    let path = temp_bundle_file("bitident", &b);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    for user in ["u1", "u2", "u3", "u4"] {
        for k in [1, 3, 10] {
            let (status, body) = get(addr, &format!("/recommend/{user}?k={k}"));
            assert_eq!(status, 200, "{user} k={k}: {body}");
            assert_eq!(
                items_of(&body),
                offline_top_k(&b, user, k),
                "served list diverges from offline ranking for {user} k={k}"
            );
        }
    }

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn cache_hits_on_repeat_and_is_reported_in_metrics() {
    let b = bundle(1.0, "cache");
    let path = temp_bundle_file("cache", &b);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    let (_, first) = get(addr, "/recommend/u1?k=3");
    assert!(!bool_of(&first, "cached"), "first request must miss");
    let (_, second) = get(addr, "/recommend/u1?k=3");
    assert!(bool_of(&second, "cached"), "second request must hit");
    assert_eq!(items_of(&first), items_of(&second));

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "serve_cache_hits 1",
        "serve_cache_misses 1",
        "serve_recommend_requests 2",
        "# TYPE serve_recommend_latency_ms histogram",
        "serve_recommend_latency_ms_count 2",
        "serve_cache_entries 1",
        "serve_model_generation 0",
    ] {
        assert!(metrics.contains(series), "missing {series:?} in:\n{metrics}");
    }

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn healthz_and_error_paths() {
    let b = bundle(1.0, "errors");
    let path = temp_bundle_file("errors", &b);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");
    assert_eq!(uint_of(&body, "generation"), 0);

    assert_eq!(get(addr, "/recommend/nobody?k=3").0, 404);
    assert_eq!(get(addr, "/recommend/u1?k=0").0, 400);
    assert_eq!(get(addr, "/recommend/u1?k=notanumber").0, 400);
    assert_eq!(get(addr, "/recommend/u1?k=99999999").0, 400);
    assert_eq!(get(addr, "/nonsense").0, 404);
    assert_eq!(post(addr, "/recommend/u1").0, 404);

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn reload_swaps_models_and_invalidates_the_cache() {
    let a = bundle(1.0, "swap-a");
    let b = bundle(-1.0, "swap-b");
    let path = temp_bundle_file("swap", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    // Warm the cache under generation 0.
    let (_, r0) = get(addr, "/recommend/u3?k=4");
    assert_eq!(items_of(&r0), offline_top_k(&a, "u3", 4));
    assert_eq!(uint_of(&r0, "generation"), 0);
    let (_, r0b) = get(addr, "/recommend/u3?k=4");
    assert!(bool_of(&r0b, "cached"));

    // Swap to bundle B (opposite ranking).
    b.save(&path).unwrap();
    let (status, body) = post(addr, "/reload");
    assert_eq!(status, 200, "{body}");
    assert_eq!(uint_of(&body, "generation"), 1);

    // The cached generation-0 list must never be served now: the first
    // post-swap request misses (generation mismatch) and recomputes
    // against B.
    let (_, r1) = get(addr, "/recommend/u3?k=4");
    assert_eq!(uint_of(&r1, "generation"), 1);
    assert!(!bool_of(&r1, "cached"), "stale cache entry served after swap");
    assert_eq!(items_of(&r1), offline_top_k(&b, "u3", 4));
    assert_ne!(items_of(&r1), items_of(&r0), "fixtures must rank differently");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn corrupt_reload_is_rejected_and_the_old_model_keeps_serving() {
    let a = bundle(1.0, "corrupt");
    let path = temp_bundle_file("corrupt", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    let want = offline_top_k(&a, "u2", 3);

    // Truncate the on-disk bundle to simulate a half-written file.
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &body[..body.len() / 3]).unwrap();

    let (status, reload_body) = post(addr, "/reload");
    assert_eq!(status, 500, "{reload_body}");
    assert!(reload_body.contains("reload rejected"), "{reload_body}");

    // Still serving generation 0, still the same answers.
    let (status, r) = get(addr, "/recommend/u2?k=3");
    assert_eq!(status, 200);
    assert_eq!(uint_of(&r, "generation"), 0);
    assert_eq!(items_of(&r), want);

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn file_watcher_hot_swaps_without_an_explicit_reload() {
    let a = bundle(1.0, "watch");
    let b = bundle(-1.0, "watch-b");
    let path = temp_bundle_file("watch", &a);
    let server = start_server(
        path.clone(),
        ServeConfig {
            watch_poll: Some(Duration::from_millis(30)),
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    assert_eq!(items_of(&get(addr, "/recommend/u1?k=4").1), offline_top_k(&a, "u1", 4));

    // Overwrite the bundle; the watcher should pick it up. Write to a
    // temp name and rename so the watcher sees one atomic change.
    let staged = path.with_extension("staged");
    b.save(&staged).unwrap();
    std::fs::rename(&staged, &path).unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, body) = get(addr, "/healthz");
        if uint_of(&body, "generation") == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never reloaded: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(items_of(&get(addr, "/recommend/u1?k=4").1), offline_top_k(&b, "u1", 4));

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn hot_swap_under_concurrent_load_never_serves_torn_or_stale_lists() {
    let a = bundle(1.0, "race-a");
    let b = bundle(-1.0, "race-b");
    let path = temp_bundle_file("race", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    // Per-generation ground truth: even generations serve A, odd serve B.
    let want_a = offline_top_k(&a, "u4", 4);
    let want_b = offline_top_k(&b, "u4", 4);
    assert_ne!(want_a, want_b);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        let (want_a, want_b) = (want_a.clone(), want_b.clone());
        clients.push(std::thread::spawn(move || {
            let mut checked = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (status, body) = get(addr, "/recommend/u4?k=4");
                assert_eq!(status, 200, "{body}");
                let generation = uint_of(&body, "generation");
                let items = items_of(&body);
                // Every response must be exactly one bundle's offline list,
                // matched to the generation it claims — anything else is a
                // torn model or a stale cache entry.
                let want = if generation % 2 == 0 { &want_a } else { &want_b };
                assert_eq!(
                    &items, want,
                    "generation {generation} served a mismatched list"
                );
                checked += 1;
            }
            checked
        }));
    }

    // Flip-flop the bundle under load.
    for round in 0..6 {
        let next = if round % 2 == 0 { &b } else { &a };
        next.save(&path).unwrap();
        let (status, body) = post(addr, "/reload");
        assert_eq!(status, 200, "{body}");
        std::thread::sleep(Duration::from_millis(40));
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u32 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total > 0, "clients never got a response in");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn post_shutdown_drains_and_wait_returns() {
    let a = bundle(1.0, "shutdown");
    let path = temp_bundle_file("shutdown", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    assert_eq!(get(addr, "/healthz").0, 200);
    let (status, body) = post(addr, "/shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"), "{body}");

    // wait() must return promptly once the drain completes.
    let waiter = std::thread::spawn(move || server.wait());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !waiter.is_finished() {
        assert!(std::time::Instant::now() < deadline, "server never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
    waiter.join().unwrap();

    // The port no longer accepts requests.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(mut s) = refused {
        // A connect may still succeed in the OS backlog window; a request
        // must then fail or return nothing.
        s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let _ = write!(s, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let mut out = String::new();
        let n = s.read_to_string(&mut out).unwrap_or(0);
        assert_eq!(n, 0, "server answered after shutdown: {out}");
    }

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
