//! End-to-end request tracing tests (ISSUE 8 acceptance):
//!
//! * With 1-in-1 sampling, a `/recommend` cache miss shows up at
//!   `GET /debug/traces` with a per-stage breakdown whose durations sum to
//!   within 10% of the trace's measured wall time — on **both** transports.
//! * `GET /debug/slow` surfaces the slowest traces.
//! * Responses are bit-identical with tracing off vs. 1-in-1 sampling.

use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_data::ItemId;
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig, Transport};
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn bundle() -> ModelBundle {
    let csv = "\
u1,i0,5\nu1,i1,5\n\
u2,i1,4\nu2,i2,5\n\
u3,i3,5\n\
u4,i0,4\nu4,i5,5\n";
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        2,
        Init::Zeros,
        &mut rng,
    );
    for i in 0..loaded.interactions.n_items() {
        *model.bias_mut(ItemId(i)) = 0.1 * (i as f32 + 1.0);
    }
    ModelBundle::new("trace-fixture".into(), model, loaded.ids, &loaded.interactions)
}

fn temp_bundle_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapf-serve-trace-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.json");
    bundle().save(&path).unwrap();
    path
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no field {key:?} in {v:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

fn uint(v: &Value) -> u64 {
    match v {
        Value::Int(n) => u64::try_from(*n).expect("non-negative"),
        Value::UInt(n) => *n,
        other => panic!("not an integer: {other:?}"),
    }
}

fn str_of(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("not a string: {other:?}"),
    }
}

fn seq(v: &Value) -> &[Value] {
    match v {
        Value::Seq(xs) => xs,
        other => panic!("not an array: {other:?}"),
    }
}

/// Finds the first trace in a `/debug/traces` body containing `stage`.
fn trace_with_stage(body: &str, stage: &str) -> Option<Value> {
    let v: Value = serde_json::from_str(body).expect("debug body is JSON");
    seq(field(&v, "traces"))
        .iter()
        .find(|t| {
            seq(field(t, "spans"))
                .iter()
                .any(|s| str_of(field(s, "stage")) == stage)
        })
        .cloned()
}

/// The acceptance check: the trace's stage durations must tile its wall
/// clock — summing to within 10% of `total_us` (with a 100µs absolute
/// floor: on a toy fixture the whole request takes tens of microseconds,
/// where scheduling noise dwarfs any percentage).
fn assert_spans_tile(trace: &Value, transport: &str) {
    let total = uint(field(trace, "total_us"));
    let spans = seq(field(trace, "spans"));
    assert!(!spans.is_empty(), "[{transport}] trace has no spans");
    let sum: u64 = spans.iter().map(|s| uint(field(s, "dur_us"))).sum();
    let slack = (total / 10).max(100);
    assert!(
        sum + slack >= total && sum <= total + slack,
        "[{transport}] span durations ({sum}µs) do not tile the trace ({total}µs): {trace:?}"
    );
}

fn run_miss_trace_test(transport: Transport, stages_expected: &[&str], tag: &str) {
    let path = temp_bundle_file(tag);
    let server = start(
        path,
        ServeConfig {
            transport,
            trace_sample: 1,
            ..ServeConfig::default()
        },
        Arc::new(Registry::new()),
    )
    .expect("server starts");
    let addr = server.addr();

    let (status, _body) = get(addr, "/recommend/u1?k=3");
    assert_eq!(status, 200);

    // The miss's trace finished when its response flushed; the debug
    // request itself is sampled too, but its own trace is still open.
    let (status, body) = get(addr, "/debug/traces?n=16");
    assert_eq!(status, 200);
    let marker = stages_expected[0];
    let trace = trace_with_stage(&body, marker)
        .unwrap_or_else(|| panic!("[{tag}] no trace with stage {marker:?} in {body}"));
    let spans = seq(field(&trace, "spans"));
    let names: Vec<&str> = spans.iter().map(|s| str_of(field(s, "stage"))).collect();
    for want in stages_expected {
        assert!(
            names.contains(want),
            "[{tag}] missing stage {want:?} in {names:?}"
        );
    }
    assert_spans_tile(&trace, tag);

    // The slow log has seen the same request.
    let (status, body) = get(addr, "/debug/slow");
    assert_eq!(status, 200);
    assert!(
        trace_with_stage(&body, marker).is_some(),
        "[{tag}] slow log misses the request: {body}"
    );

    server.shutdown();
}

#[test]
fn threaded_miss_trace_breaks_down_per_stage() {
    run_miss_trace_test(
        Transport::Threaded,
        &[
            "score.compute",
            "req.parse",
            "cache.lookup",
            "req.render",
            "req.write",
        ],
        "threaded",
    );
}

#[test]
fn event_loop_miss_trace_breaks_down_per_stage() {
    run_miss_trace_test(
        Transport::EventLoop,
        &[
            "batch.score",
            "req.parse",
            "cache.lookup",
            "batch.queue",
            "batch.wake",
            "req.render",
            "req.write",
        ],
        "event-loop",
    );
}

/// Tracing must not perturb answers: the same request sequence against the
/// same bundle yields byte-identical bodies with sampling off and 1-in-1.
#[test]
fn responses_are_bit_identical_with_tracing_on() {
    for transport in [Transport::Threaded, Transport::EventLoop] {
        let tag = format!("bitid-{transport:?}");
        let path = temp_bundle_file(&tag);
        let mut bodies: Vec<Vec<String>> = Vec::new();
        for trace_sample in [0u64, 1u64] {
            let server = start(
                path.clone(),
                ServeConfig {
                    transport,
                    trace_sample,
                    ..ServeConfig::default()
                },
                Arc::new(Registry::new()),
            )
            .expect("server starts");
            let addr = server.addr();
            let mut run = Vec::new();
            for req in [
                "/recommend/u1?k=3",
                "/recommend/u1?k=3", // cache hit second time
                "/recommend/u2?k=2",
                "/recommend/u3",
                "/healthz",
            ] {
                let (status, body) = get(addr, req);
                assert_eq!(status, 200, "{req}");
                run.push(body);
            }
            server.shutdown();
            bodies.push(run);
        }
        assert_eq!(bodies[0], bodies[1], "tracing changed a response body");
    }
}

/// `/metrics` latency buckets carry OpenMetrics exemplars referencing the
/// sampled traces.
#[test]
fn metrics_buckets_carry_trace_exemplars() {
    let path = temp_bundle_file("exemplar");
    let server = start(
        path,
        ServeConfig {
            trace_sample: 1,
            ..ServeConfig::default()
        },
        Arc::new(Registry::new()),
    )
    .expect("server starts");
    let addr = server.addr();
    let (status, _) = get(addr, "/recommend/u1?k=3");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains("# {trace_id=\""),
        "no exemplar on any latency bucket:\n{body}"
    );
    server.shutdown();
}
