//! End-to-end tests for the event-driven transport (ISSUE 7).
//!
//! The acceptance bar: responses scored through the micro-batching path
//! are bit-identical to the offline evaluator and to single-request
//! scoring — including across hot-swaps with batches in flight; concurrent
//! identical misses coalesce to exactly one scoring computation; graceful
//! drain completes pending batches before the last socket closes; overload
//! sheds typed 503s; and the scan-poller fallback serves identically.
//!
//! Tests that arm failpoints serialize on `clapf_faults::exclusive()` —
//! failpoints are process-global.

use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_data::ItemId;
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig, Transport};
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- fixtures

/// Same shape as the threaded-transport fixture: item biases order the
/// catalog, `slope` flips so bundles A and B rank in opposite orders.
fn bundle(slope: f32, tag: &str) -> ModelBundle {
    let csv = "\
u1,i0,5\nu1,i1,5\n\
u2,i1,4\nu2,i2,5\n\
u3,i3,5\n\
u4,i0,4\nu4,i5,5\n";
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        2,
        Init::Zeros,
        &mut rng,
    );
    for i in 0..loaded.interactions.n_items() {
        *model.bias_mut(ItemId(i)) = slope * (i as f32 + 1.0);
    }
    ModelBundle::new(format!("event-{tag}"), model, loaded.ids, &loaded.interactions)
}

fn temp_bundle_file(tag: &str, b: &ModelBundle) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapf-serve-ev-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.json");
    b.save(&path).unwrap();
    path
}

fn offline_top_k(b: &ModelBundle, raw_user: &str, k: usize) -> Vec<String> {
    b.recommend_raw(raw_user, k).unwrap()
}

fn event_config() -> ServeConfig {
    ServeConfig {
        transport: Transport::EventLoop,
        workers: 2,
        ..ServeConfig::default()
    }
}

fn start_server(path: PathBuf, config: ServeConfig) -> (clapf_serve::ServerHandle, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let handle = start(path, config, Arc::clone(&registry)).expect("server starts");
    (handle, registry)
}

// ---------------------------------------------------------- tiny TCP client

/// One-shot `Connection: close` request; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response_text(&raw)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path)
}

fn post(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "POST", path)
}

fn parse_response_text(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A keep-alive client: one connection, many framed request/response pairs.
struct KeepAlive {
    stream: TcpStream,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        KeepAlive { stream }
    }

    fn send(&mut self, method: &str, path: &str) {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .unwrap();
    }

    /// Reads exactly one `Content-Length`-framed response.
    fn read_response(&mut self) -> (u16, String) {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            match self.stream.read(&mut byte) {
                Ok(1) => head.push(byte[0]),
                Ok(_) => panic!("connection closed mid-headers: {head:?}"),
                Err(e) => panic!("read error mid-headers: {e}"),
            }
        }
        let head_text = String::from_utf8_lossy(&head).to_string();
        let status: u16 = head_text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no status line in {head_text:?}"));
        let len: usize = head_text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no Content-Length in {head_text:?}"));
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).expect("read body");
        (status, String::from_utf8(body).unwrap())
    }

    fn roundtrip(&mut self, method: &str, path: &str) -> (u16, String) {
        self.send(method, path);
        self.read_response()
    }
}

// ------------------------------------------------------------ JSON helpers

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no field {key:?} in {v:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

fn items_of(body: &str) -> Vec<String> {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, "items") {
        Value::Seq(xs) => xs
            .iter()
            .map(|x| match x {
                Value::Str(s) => s.clone(),
                other => panic!("non-string item {other:?}"),
            })
            .collect(),
        other => panic!("items is not an array: {other:?}"),
    }
}

fn uint_of(body: &str, key: &str) -> u64 {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    match field(&v, key) {
        Value::Int(n) => u64::try_from(*n).expect("non-negative"),
        Value::UInt(n) => *n,
        other => panic!("{key} is not an integer: {other:?}"),
    }
}

/// Reads one counter from a Prometheus text dump (0.0 when absent). The
/// renderer mangles `.` to `_` in metric names.
fn metric_value(registry: &Registry, name: &str) -> f64 {
    let mangled = name.replace('.', "_");
    registry
        .render_text()
        .lines()
        .find_map(|l| {
            let (n, v) = l.rsplit_once(' ')?;
            (n == mangled).then(|| v.parse().ok())?
        })
        .unwrap_or(0.0)
}

// ------------------------------------------------------------------- tests

#[test]
fn event_loop_matches_offline_evaluator_bit_for_bit() {
    let b = bundle(1.0, "bitident");
    let path = temp_bundle_file("ev-bitident", &b);
    let (server, registry) = start_server(path.clone(), event_config());
    let addr = server.addr();

    for user in ["u1", "u2", "u3", "u4"] {
        for k in [1, 3, 4] {
            let (status, body) = get(addr, &format!("/recommend/{user}?k={k}"));
            assert_eq!(status, 200, "{body}");
            assert_eq!(
                items_of(&body),
                offline_top_k(&b, user, k),
                "user {user} k {k} diverged from the offline evaluator"
            );
            assert_eq!(uint_of(&body, "k"), k as u64);
        }
    }
    // The second identical request must be a cache hit served inline.
    let (_, body) = get(addr, "/recommend/u1?k=3");
    assert!(body.contains("\"cached\":true"), "{body}");

    // On Linux with default features the epoll backend must be live.
    #[cfg(all(target_os = "linux", feature = "epoll"))]
    assert_eq!(metric_value(&registry, "serve.backend.epoll"), 1.0);
    let _ = &registry;

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn scan_poller_fallback_serves_identically() {
    let b = bundle(1.0, "scan");
    let path = temp_bundle_file("ev-scan", &b);
    let (server, registry) = start_server(
        path.clone(),
        ServeConfig {
            force_scan_poller: true,
            ..event_config()
        },
    );
    let addr = server.addr();

    for user in ["u1", "u4"] {
        let (status, body) = get(addr, &format!("/recommend/{user}?k=4"));
        assert_eq!(status, 200, "{body}");
        assert_eq!(items_of(&body), offline_top_k(&b, user, 4));
    }
    assert_eq!(metric_value(&registry, "serve.backend.scan"), 1.0);

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn pipelined_keep_alive_requests_answer_in_order() {
    let b = bundle(1.0, "pipeline");
    let path = temp_bundle_file("ev-pipeline", &b);
    let (server, _) = start_server(path.clone(), event_config());
    let addr = server.addr();

    let mut client = KeepAlive::connect(addr);
    // Three requests in one burst — the parser must split them, and a
    // score-parked head must not reorder the pipelined tail.
    client.send("GET", "/recommend/u1?k=3");
    client.send("GET", "/healthz");
    client.send("GET", "/recommend/u2?k=2");
    let (s1, b1) = client.read_response();
    let (s2, b2) = client.read_response();
    let (s3, b3) = client.read_response();
    assert_eq!((s1, s2, s3), (200, 200, 200), "{b1}\n{b2}\n{b3}");
    assert_eq!(items_of(&b1), offline_top_k(&b, "u1", 3));
    assert!(b2.contains("\"status\":\"ok\""), "{b2}");
    assert_eq!(items_of(&b3), offline_top_k(&b, "u2", 2));

    // The connection is still usable afterwards.
    let (s4, b4) = client.roundtrip("GET", "/recommend/u3?k=1");
    assert_eq!(s4, 200);
    assert_eq!(items_of(&b4), offline_top_k(&b, "u3", 1));

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn concurrent_identical_misses_score_exactly_once() {
    let _guard = clapf_faults::exclusive();
    let b = bundle(1.0, "coalesce");
    let path = temp_bundle_file("ev-coalesce", &b);
    let (server, registry) = start_server(path.clone(), event_config());
    let addr = server.addr();

    // Hold the first batch in the scorer long enough for every concurrent
    // request to arrive while its key is still in flight.
    clapf_faults::arm_nth(
        "serve.batch.flush",
        clapf_faults::Fault::Delay { ms: 300 },
        0,
        Some(1),
    );

    let want = offline_top_k(&b, "u2", 3);
    let mut clients = Vec::new();
    for _ in 0..8 {
        let want = want.clone();
        clients.push(std::thread::spawn(move || {
            let (status, body) = get(addr, "/recommend/u2?k=3");
            assert_eq!(status, 200, "{body}");
            assert_eq!(items_of(&body), want, "coalesced answer diverged");
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    clapf_faults::disarm("serve.batch.flush");

    // Exactly one scoring computation: one miss; everything else either
    // coalesced onto the in-flight key or hit the cache afterwards.
    assert_eq!(
        metric_value(&registry, "serve.cache.misses"),
        1.0,
        "stampede was not coalesced"
    );
    let hits = metric_value(&registry, "serve.cache.hits");
    let coalesced = metric_value(&registry, "serve.cache.coalesced");
    assert_eq!(hits + coalesced, 7.0, "hits {hits} + coalesced {coalesced}");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn hot_swap_with_batches_in_flight_stays_bit_identical() {
    let a = bundle(1.0, "ev-race-a");
    let b = bundle(-1.0, "ev-race-b");
    let path = temp_bundle_file("ev-race", &a);
    // Cache OFF: every request is scored through the batch path, so the
    // bit-identity assertion below exercises batched scoring itself, not
    // cached copies of it. Batches are guaranteed in flight across swaps.
    let (server, _) = start_server(
        path.clone(),
        ServeConfig {
            cache_capacity: 0,
            ..event_config()
        },
    );
    let addr = server.addr();

    let want_a = offline_top_k(&a, "u4", 4);
    let want_b = offline_top_k(&b, "u4", 4);
    assert_ne!(want_a, want_b);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        let (want_a, want_b) = (want_a.clone(), want_b.clone());
        clients.push(std::thread::spawn(move || {
            let mut checked = 0u32;
            let mut ka = KeepAlive::connect(addr);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (status, body) = ka.roundtrip("GET", "/recommend/u4?k=4");
                assert_eq!(status, 200, "{body}");
                let generation = uint_of(&body, "generation");
                let items = items_of(&body);
                // Every batched answer must be exactly one bundle's offline
                // list, matched to the generation it claims.
                let want = if generation % 2 == 0 { &want_a } else { &want_b };
                assert_eq!(
                    &items, want,
                    "generation {generation} served a mismatched batched list"
                );
                checked += 1;
            }
            checked
        }));
    }

    for round in 0..6 {
        let next = if round % 2 == 0 { &b } else { &a };
        next.save(&path).unwrap();
        let (status, body) = post(addr, "/reload");
        assert_eq!(status, 200, "{body}");
        std::thread::sleep(Duration::from_millis(40));
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u32 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total > 0, "clients never got a response in");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn shutdown_with_a_pending_batch_still_answers_it() {
    let _guard = clapf_faults::exclusive();
    let b = bundle(1.0, "ev-drain");
    let path = temp_bundle_file("ev-drain", &b);
    let (server, _) = start_server(path.clone(), event_config());
    let addr = server.addr();

    // Park one request in the scorer for 400ms, then shut down while it is
    // still in flight: the drain must deliver its answer before closing.
    clapf_faults::arm_nth(
        "serve.batch.flush",
        clapf_faults::Fault::Delay { ms: 400 },
        0,
        Some(1),
    );
    let want = offline_top_k(&b, "u3", 2);
    let pending = std::thread::spawn(move || get(addr, "/recommend/u3?k=2"));
    std::thread::sleep(Duration::from_millis(100)); // let it park

    let (status, body) = post(addr, "/shutdown");
    assert_eq!(status, 200, "{body}");

    let (status, body) = pending.join().unwrap();
    clapf_faults::disarm("serve.batch.flush");
    assert_eq!(status, 200, "pending request lost in drain: {body}");
    assert_eq!(items_of(&body), want);

    // And the drain completes promptly after the batch lands.
    let waiter = std::thread::spawn(move || server.wait());
    let deadline = Instant::now() + Duration::from_secs(10);
    while !waiter.is_finished() {
        assert!(Instant::now() < deadline, "server never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
    waiter.join().unwrap();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn connections_past_max_conns_are_shed_with_503() {
    let b = bundle(1.0, "ev-maxconn");
    let path = temp_bundle_file("ev-maxconn", &b);
    let (server, _) = start_server(
        path.clone(),
        ServeConfig {
            max_conns: 2,
            ..event_config()
        },
    );
    let addr = server.addr();

    // Fill both slots and prove they are live (a request round-trips).
    let mut held_1 = KeepAlive::connect(addr);
    let mut held_2 = KeepAlive::connect(addr);
    assert_eq!(held_1.roundtrip("GET", "/healthz").0, 200);
    assert_eq!(held_2.roundtrip("GET", "/healthz").0, 200);

    // The third connection is accepted only to be shed with a typed 503.
    let mut third = TcpStream::connect(addr).expect("connect");
    third
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = String::new();
    third.read_to_string(&mut raw).expect("read shed response");
    let (status, body) = parse_response_text(&raw);
    assert_eq!(status, 503, "{body}");
    assert!(raw.contains("Retry-After"), "{raw}");

    // Freeing a slot restores service for new connections.
    drop(held_1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = KeepAlive::connect(addr);
        retry.send("GET", "/healthz");
        let mut first = [0u8; 12];
        match retry.stream.read_exact(&mut first) {
            Ok(()) if String::from_utf8_lossy(&first).contains("200") => break,
            _ => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn pending_bound_sheds_the_request_but_keeps_the_connection() {
    let _guard = clapf_faults::exclusive();
    let b = bundle(1.0, "ev-pbound");
    let path = temp_bundle_file("ev-pbound", &b);
    let (server, _) = start_server(
        path.clone(),
        ServeConfig {
            cache_capacity: 0, // every request scores; nothing coalesces
            pending_bound: 1,
            workers: 1,
            ..event_config()
        },
    );
    let addr = server.addr();

    // Slow every batch down so the queue visibly backs up.
    clapf_faults::arm("serve.batch.flush", clapf_faults::Fault::Delay { ms: 400 });

    // First request: dequeued by the (single) scorer, now sleeping.
    let mut first = KeepAlive::connect(addr);
    first.send("GET", "/recommend/u1?k=2");
    std::thread::sleep(Duration::from_millis(100));
    // Second request: sits in the queue (length 1 = the bound).
    let mut second = KeepAlive::connect(addr);
    second.send("GET", "/recommend/u2?k=2");
    std::thread::sleep(Duration::from_millis(100));
    // Third request: queue is at the bound — shed, but on a live socket.
    let mut third = KeepAlive::connect(addr);
    let (status, body) = third.roundtrip("GET", "/recommend/u3?k=2");
    clapf_faults::disarm("serve.batch.flush");
    assert_eq!(status, 503, "expected a shed, got {body}");

    // The shed connection survives and serves the retry.
    let (status, body) = third.roundtrip("GET", "/healthz");
    assert_eq!(status, 200, "{body}");

    // The parked requests complete normally.
    assert_eq!(first.read_response().0, 200);
    assert_eq!(second.read_response().0, 200);

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn poller_wait_faults_are_tolerated() {
    let _guard = clapf_faults::exclusive();
    let b = bundle(1.0, "ev-waitfault");
    let path = temp_bundle_file("ev-waitfault", &b);
    let (server, registry) = start_server(path.clone(), event_config());
    let addr = server.addr();

    clapf_faults::arm_nth("serve.epoll.wait", clapf_faults::Fault::Io, 0, Some(5));
    for _ in 0..3 {
        let (status, _) = get(addr, "/recommend/u1?k=2");
        assert_eq!(status, 200);
    }
    clapf_faults::disarm("serve.epoll.wait");
    assert!(
        metric_value(&registry, "serve.epoll.faults") >= 1.0,
        "failpoint never fired"
    );

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn file_watcher_reloads_under_the_event_transport() {
    let a = bundle(1.0, "ev-watch-a");
    let b = bundle(-1.0, "ev-watch-b");
    let path = temp_bundle_file("ev-watch", &a);
    let (server, _) = start_server(
        path.clone(),
        ServeConfig {
            watch_poll: Some(Duration::from_millis(30)),
            ..event_config()
        },
    );
    let addr = server.addr();

    assert_eq!(
        items_of(&get(addr, "/recommend/u1?k=4").1),
        offline_top_k(&a, "u1", 4)
    );

    let staged = path.with_extension("staged");
    b.save(&staged).unwrap();
    std::fs::rename(&staged, &path).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, body) = get(addr, "/healthz");
        if uint_of(&body, "generation") == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "watcher never reloaded: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        items_of(&get(addr, "/recommend/u1?k=4").1),
        offline_top_k(&b, "u1", 4)
    );

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
