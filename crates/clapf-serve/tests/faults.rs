//! Hot-reload and overload behaviour under injected faults (ISSUE 5).
//!
//! Every test serializes on `clapf_faults::exclusive()` — failpoints are
//! process-global, so a concurrently armed `serve.handler` fault would
//! bleed into an unrelated test's requests.

use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_data::ItemId;
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig};
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- fixtures

fn bundle(slope: f32, tag: &str) -> ModelBundle {
    let csv = "u1,i0,5\nu1,i1,5\nu2,i1,4\nu2,i2,5\nu3,i3,5\n";
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        2,
        Init::Zeros,
        &mut rng,
    );
    for i in 0..loaded.interactions.n_items() {
        *model.bias_mut(ItemId(i)) = slope * (i as f32 + 1.0);
    }
    ModelBundle::new(format!("fault-{tag}"), model, loaded.ids, &loaded.interactions)
}

fn temp_bundle_file(tag: &str, b: &ModelBundle) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapf-serve-faults-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.json");
    b.save(&path).unwrap();
    path
}

fn start_server(path: PathBuf, config: ServeConfig) -> clapf_serve::ServerHandle {
    start(path, config, Arc::new(Registry::new())).expect("server starts")
}

// ---------------------------------------------------------- tiny TCP client

/// One-shot request; returns (status, headers, body).
fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = http(addr, "GET", path);
    (status, body)
}

fn post(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = http(addr, "POST", path);
    (status, body)
}

fn generation_of(addr: SocketAddr) -> u64 {
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let key = "\"generation\":";
    let rest = &body[body.find(key).expect("generation field") + key.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("generation is a number")
}

/// Reads one full HTTP response off an already-open stream.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header line");
        if line == "\r\n" || line == "\n" || line.is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    (status, head)
}

// ------------------------------------------------------------------- tests

#[test]
fn torn_external_write_is_never_served_and_recovery_is_automatic() {
    // A non-atomic external writer (not our atomic `save`) crashes midway:
    // the watcher must reject the torn file, keep serving the old model,
    // and pick up the next complete write without intervention.
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "torn-a");
    let b = bundle(-1.0, "torn-b");
    let path = temp_bundle_file("torn", &a);
    let server = start_server(
        path.clone(),
        ServeConfig {
            watch_poll: Some(Duration::from_millis(20)),
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    assert_eq!(generation_of(addr), 0);

    // Tear the bundle on disk the way a crashed plain `fs::write` would.
    let body = serde_json::to_string(&b).unwrap();
    std::fs::write(&path, &body[..body.len() / 2]).unwrap();

    // Give the watcher several polls on the torn file; it must not swap.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(generation_of(addr), 0, "torn bundle was served");
    let (status, body_r) = get(addr, "/recommend/u1?k=2");
    assert_eq!(status, 200, "{body_r}");

    // The writer finishes (a complete file lands); the watcher recovers.
    b.save(&path).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while generation_of(addr) != 1 {
        assert!(Instant::now() < deadline, "watcher never recovered");
        std::thread::sleep(Duration::from_millis(20));
    }

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn watcher_survives_injected_poll_errors() {
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "poll-a");
    let b = bundle(-1.0, "poll-b");
    let path = temp_bundle_file("poll", &a);
    let server = start_server(
        path.clone(),
        ServeConfig {
            watch_poll: Some(Duration::from_millis(20)),
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    // The next few stat polls fail; the watcher must skip those rounds,
    // keep serving, and reload once polling works again.
    clapf_faults::arm_nth("serve.watch.poll", clapf_faults::Fault::Io, 0, Some(3));
    b.save(&path).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while generation_of(addr) != 1 {
        assert!(Instant::now() < deadline, "watcher never reloaded");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        clapf_faults::hits("serve.watch.poll") >= 3,
        "poll failpoint was not exercised"
    );

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn rapid_repeated_reloads_never_serve_a_torn_model() {
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "rapid-a");
    let b = bundle(-1.0, "rapid-b");
    let path = temp_bundle_file("rapid", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    for round in 0..10u64 {
        let next = if round % 2 == 0 { &b } else { &a };
        next.save(&path).unwrap();
        let (status, body) = post(addr, "/reload");
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(generation_of(addr), round + 1);
        let (status, body) = get(addr, "/recommend/u2?k=2");
        assert_eq!(status, 200, "round {round}: {body}");
    }

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn handler_panic_is_isolated_to_one_response() {
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "panic");
    let path = temp_bundle_file("panic", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    clapf_faults::arm_nth("serve.handler", clapf_faults::Fault::Panic, 0, Some(1));
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "{body}");

    // The worker survived: subsequent requests are served normally and the
    // panic is visible in the metrics.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let (_, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("serve_panics 1"), "{metrics}");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn handler_io_fault_is_a_typed_500() {
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "io500");
    let path = temp_bundle_file("io500", &a);
    let server = start_server(path.clone(), ServeConfig::default());
    let addr = server.addr();

    clapf_faults::arm_nth("serve.handler", clapf_faults::Fault::Io, 0, Some(1));
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("handler fault"), "{body}");
    assert_eq!(get(addr, "/healthz").0, 200);

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn overload_sheds_with_typed_503_and_recovers() {
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "shed");
    let path = temp_bundle_file("shed", &a);
    let server = start_server(
        path.clone(),
        ServeConfig {
            workers: 1,
            queue_bound: 1,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    // Occupy the single worker: a keep-alive connection that has served one
    // request parks in the worker's idle-poll loop.
    let mut held = TcpStream::connect(addr).unwrap();
    write!(held, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut held);
    assert_eq!(status, 200);

    // Fill the queue (capacity 1) with a second idle connection.
    let queued = TcpStream::connect(addr).unwrap();

    // The third connection must be shed immediately: typed 503 with a
    // Retry-After hint, not a hang.
    let mut shed_conn = TcpStream::connect(addr).unwrap();
    let started = Instant::now();
    let (status, head) = read_response(&mut shed_conn);
    assert_eq!(status, 503, "{head}");
    assert!(head.contains("Retry-After"), "{head}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shed response was not prompt"
    );

    // Release the worker; the queued connection gets served.
    drop(held);
    let mut queued = queued;
    write!(queued, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut queued);
    assert_eq!(status, 200);
    drop(queued);

    let (_, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("serve_shed 1"), "{metrics}");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn expired_queue_deadline_sheds_instead_of_serving() {
    let _guard = clapf_faults::exclusive();
    let a = bundle(1.0, "deadline");
    let path = temp_bundle_file("deadline", &a);
    let server = start_server(
        path.clone(),
        ServeConfig {
            // Zero admission budget: every dequeued connection is already
            // "too old", so the shed path runs deterministically.
            queue_deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("overloaded"), "{body}");

    server.shutdown();
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
