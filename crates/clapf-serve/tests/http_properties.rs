//! Property tests: the HTTP parser is total over arbitrary byte streams.
//!
//! Whatever a client throws at the socket, `parse_request` must return
//! `Ok(Request)` or a typed `ParseError` — never panic — and every `Bad`
//! rejection must carry a 4xx/5xx status the connection loop can answer
//! with before closing. Three generators attack from different angles:
//! raw bytes, almost-valid request lines, and valid requests with fuzzed
//! query strings.

use clapf_serve::{parse_request, Feed, FeedParser, ParseError, Request};
use proptest::prelude::*;
use std::io::Cursor;

fn parse_bytes(bytes: &[u8]) -> Result<clapf_serve::Request, ParseError> {
    parse_request(&mut Cursor::new(bytes.to_vec()))
}

/// Every `Bad` rejection must be answerable: a 4xx/5xx with a reason.
fn assert_well_formed_outcome(out: &Result<clapf_serve::Request, ParseError>) {
    match out {
        Ok(req) => {
            assert!(req.path.starts_with('/'), "parsed path {:?}", req.path);
        }
        Err(ParseError::Bad { status, reason }) => {
            assert!(
                (400..=599).contains(status),
                "non-error status {status} ({reason})"
            );
            assert!(!reason.is_empty());
        }
        Err(ParseError::Eof | ParseError::Idle | ParseError::Io(_)) => {}
    }
}

proptest! {
    /// Raw fuzz: arbitrary bytes never panic the parser.
    #[test]
    fn parser_is_total_over_raw_bytes(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..512),
    ) {
        let out = parse_bytes(&bytes);
        assert_well_formed_outcome(&out);
    }

    /// Structured fuzz: method-ish token, path-ish bytes, version-ish
    /// token, plus trailing noise. Exercises the deeper branches (request
    /// line splitting, header parsing) that raw bytes rarely reach.
    #[test]
    fn parser_is_total_over_almost_requests(
        method in proptest::collection::vec(33u8..127, 0..8),
        path in proptest::collection::vec(32u8..127, 0..64),
        version in proptest::collection::vec(33u8..127, 0..12),
        headers in proptest::collection::vec(
            proptest::collection::vec(32u8..127, 0..48),
            0..6,
        ),
    ) {
        let mut req: Vec<u8> = Vec::new();
        req.extend_from_slice(&method);
        req.push(b' ');
        req.extend_from_slice(&path);
        req.push(b' ');
        req.extend_from_slice(&version);
        req.extend_from_slice(b"\r\n");
        for h in &headers {
            req.extend_from_slice(h);
            req.extend_from_slice(b"\r\n");
        }
        req.extend_from_slice(b"\r\n");
        let out = parse_bytes(&req);
        assert_well_formed_outcome(&out);
    }

    /// Valid request frame with a fuzzed query string: either parses (with
    /// a decoded path) or rejects cleanly on a bad escape.
    #[test]
    fn query_fuzz_parses_or_rejects_cleanly(
        query in proptest::collection::vec(33u8..127, 0..96),
    ) {
        let mut req: Vec<u8> = Vec::new();
        req.extend_from_slice(b"GET /recommend/u1?");
        // Strip whitespace-ish bytes that would split the request line.
        let q: Vec<u8> = query.into_iter().filter(|&b| b != b' ').collect();
        req.extend_from_slice(&q);
        req.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let out = parse_bytes(&req);
        assert_well_formed_outcome(&out);
        if let Ok(r) = out {
            assert_eq!(r.path, "/recommend/u1");
        }
    }

    /// Truncating a valid request at any byte never panics and never
    /// yields a parsed request claiming the full path.
    #[test]
    fn truncation_at_any_point_is_safe(cut in 0usize..78) {
        let full = b"GET /recommend/user42?k=10 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
        let cut = cut.min(full.len());
        let out = parse_bytes(&full[..cut]);
        assert_well_formed_outcome(&out);
        if cut < full.len() {
            // A truncated request must not parse successfully.
            assert!(out.is_err(), "cut at {cut} unexpectedly parsed");
        }
    }

    /// Incremental/one-shot identity: feeding a request stream in arbitrary
    /// fragments (down to one byte at a time) through `FeedParser` yields
    /// exactly the requests one-shot `parse_request` yields on the whole
    /// stream, in order, with identical fields.
    #[test]
    fn fragmented_feed_matches_one_shot(
        paths in proptest::collection::vec(
            proptest::collection::vec(97u8..123, 1..12)
                .prop_map(|b| String::from_utf8(b).expect("ascii")),
            1..5,
        ),
        ks in proptest::collection::vec(1u32..100, 1..5),
        cuts in proptest::collection::vec(0usize..512, 0..24),
    ) {
        let mut stream: Vec<u8> = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            let k = ks[i % ks.len()];
            stream.extend_from_slice(
                format!("GET /recommend/{p}?k={k} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
            );
        }
        let expected = one_shot_all(&stream);
        assert_eq!(expected.len(), paths.len());

        // Cut points define the fragmentation; dedup/sort to get a split.
        let mut splits: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
        splits.sort_unstable();
        splits.dedup();
        let got = feed_all(&stream, &splits);
        assert_requests_eq(&got, &expected);
    }

    /// The worst fragmentation — every byte its own TCP segment — still
    /// matches one-shot parsing exactly.
    #[test]
    fn byte_at_a_time_feed_matches_one_shot(
        paths in proptest::collection::vec(
            proptest::collection::vec(97u8..123, 1..8)
                .prop_map(|b| String::from_utf8(b).expect("ascii")),
            1..4,
        ),
    ) {
        let mut stream: Vec<u8> = Vec::new();
        for p in &paths {
            stream.extend_from_slice(format!("GET /{p} HTTP/1.1\r\n\r\n").as_bytes());
        }
        let expected = one_shot_all(&stream);
        let every_byte: Vec<usize> = (1..stream.len()).collect();
        let got = feed_all(&stream, &every_byte);
        assert_requests_eq(&got, &expected);
    }

    /// The incremental parser is total: arbitrary bytes in arbitrary
    /// fragments never panic it, and every rejection is a typed 4xx/5xx.
    #[test]
    fn feed_parser_is_total_over_raw_fragments(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..512),
        cuts in proptest::collection::vec(0usize..512, 0..16),
    ) {
        let mut splits: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
        splits.sort_unstable();
        splits.dedup();
        let mut p = FeedParser::new();
        let mut start = 0;
        for &s in splits.iter().chain(std::iter::once(&bytes.len())) {
            p.feed(&bytes[start..s]);
            start = s;
            loop {
                match p.next_request() {
                    Feed::Request(req) => assert!(req.path.starts_with('/')),
                    Feed::NeedMore | Feed::Closed => break,
                    Feed::Bad { status, reason } => {
                        assert!((400..=599).contains(&status), "status {status} ({reason})");
                        // Terminal: the transport closes here.
                        return Ok(());
                    }
                }
            }
        }
        p.close();
        loop {
            match p.next_request() {
                Feed::Request(req) => assert!(req.path.starts_with('/')),
                Feed::NeedMore => unreachable!("NeedMore after close()"),
                Feed::Closed => break,
                Feed::Bad { status, reason } => {
                    assert!((400..=599).contains(&status), "status {status} ({reason})");
                    break;
                }
            }
        }
    }
}

/// Parses every pipelined request in `stream` with the one-shot parser.
fn one_shot_all(stream: &[u8]) -> Vec<Request> {
    let mut cur = Cursor::new(stream.to_vec());
    let mut out = Vec::new();
    loop {
        match parse_request(&mut cur) {
            Ok(r) => out.push(r),
            Err(ParseError::Eof) => return out,
            Err(e) => panic!("one-shot parse failed on valid stream: {e:?}"),
        }
    }
}

/// Feeds `stream` to a `FeedParser` split at `splits` (sorted byte offsets)
/// and collects every parsed request.
fn feed_all(stream: &[u8], splits: &[usize]) -> Vec<Request> {
    let mut p = FeedParser::new();
    let mut out = Vec::new();
    let mut start = 0;
    let drain = |p: &mut FeedParser, out: &mut Vec<Request>| loop {
        match p.next_request() {
            Feed::Request(r) => out.push(r),
            Feed::NeedMore | Feed::Closed => break,
            Feed::Bad { status, reason } => {
                panic!("incremental parse rejected valid stream: {status} {reason}")
            }
        }
    };
    for &s in splits.iter().chain(std::iter::once(&stream.len())) {
        p.feed(&stream[start..s]);
        start = s;
        drain(&mut p, &mut out);
    }
    p.close();
    drain(&mut p, &mut out);
    out
}

fn assert_requests_eq(got: &[Request], expected: &[Request]) {
    assert_eq!(got.len(), expected.len(), "request count differs");
    for (g, e) in got.iter().zip(expected) {
        assert_eq!(g.method, e.method);
        assert_eq!(g.path, e.path);
        assert_eq!(g.query, e.query);
        assert_eq!(g.keep_alive, e.keep_alive);
    }
}
