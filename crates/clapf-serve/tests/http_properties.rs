//! Property tests: the HTTP parser is total over arbitrary byte streams.
//!
//! Whatever a client throws at the socket, `parse_request` must return
//! `Ok(Request)` or a typed `ParseError` — never panic — and every `Bad`
//! rejection must carry a 4xx/5xx status the connection loop can answer
//! with before closing. Three generators attack from different angles:
//! raw bytes, almost-valid request lines, and valid requests with fuzzed
//! query strings.

use clapf_serve::{parse_request, ParseError};
use proptest::prelude::*;
use std::io::Cursor;

fn parse_bytes(bytes: &[u8]) -> Result<clapf_serve::Request, ParseError> {
    parse_request(&mut Cursor::new(bytes.to_vec()))
}

/// Every `Bad` rejection must be answerable: a 4xx/5xx with a reason.
fn assert_well_formed_outcome(out: &Result<clapf_serve::Request, ParseError>) {
    match out {
        Ok(req) => {
            assert!(req.path.starts_with('/'), "parsed path {:?}", req.path);
        }
        Err(ParseError::Bad { status, reason }) => {
            assert!(
                (400..=599).contains(status),
                "non-error status {status} ({reason})"
            );
            assert!(!reason.is_empty());
        }
        Err(ParseError::Eof | ParseError::Idle | ParseError::Io(_)) => {}
    }
}

proptest! {
    /// Raw fuzz: arbitrary bytes never panic the parser.
    #[test]
    fn parser_is_total_over_raw_bytes(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..512),
    ) {
        let out = parse_bytes(&bytes);
        assert_well_formed_outcome(&out);
    }

    /// Structured fuzz: method-ish token, path-ish bytes, version-ish
    /// token, plus trailing noise. Exercises the deeper branches (request
    /// line splitting, header parsing) that raw bytes rarely reach.
    #[test]
    fn parser_is_total_over_almost_requests(
        method in proptest::collection::vec(33u8..127, 0..8),
        path in proptest::collection::vec(32u8..127, 0..64),
        version in proptest::collection::vec(33u8..127, 0..12),
        headers in proptest::collection::vec(
            proptest::collection::vec(32u8..127, 0..48),
            0..6,
        ),
    ) {
        let mut req: Vec<u8> = Vec::new();
        req.extend_from_slice(&method);
        req.push(b' ');
        req.extend_from_slice(&path);
        req.push(b' ');
        req.extend_from_slice(&version);
        req.extend_from_slice(b"\r\n");
        for h in &headers {
            req.extend_from_slice(h);
            req.extend_from_slice(b"\r\n");
        }
        req.extend_from_slice(b"\r\n");
        let out = parse_bytes(&req);
        assert_well_formed_outcome(&out);
    }

    /// Valid request frame with a fuzzed query string: either parses (with
    /// a decoded path) or rejects cleanly on a bad escape.
    #[test]
    fn query_fuzz_parses_or_rejects_cleanly(
        query in proptest::collection::vec(33u8..127, 0..96),
    ) {
        let mut req: Vec<u8> = Vec::new();
        req.extend_from_slice(b"GET /recommend/u1?");
        // Strip whitespace-ish bytes that would split the request line.
        let q: Vec<u8> = query.into_iter().filter(|&b| b != b' ').collect();
        req.extend_from_slice(&q);
        req.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let out = parse_bytes(&req);
        assert_well_formed_outcome(&out);
        if let Ok(r) = out {
            assert_eq!(r.path, "/recommend/u1");
        }
    }

    /// Truncating a valid request at any byte never panics and never
    /// yields a parsed request claiming the full path.
    #[test]
    fn truncation_at_any_point_is_safe(cut in 0usize..78) {
        let full = b"GET /recommend/user42?k=10 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
        let cut = cut.min(full.len());
        let out = parse_bytes(&full[..cut]);
        assert_well_formed_outcome(&out);
        if cut < full.len() {
            // A truncated request must not parse successfully.
            assert!(out.is_err(), "cut at {cut} unexpectedly parsed");
        }
    }
}
