//! Deterministic chaos harness for the fleet tier (ISSUE 10).
//!
//! Boots a real fleet — an in-process `clapf-fleet` router fronting N
//! `clapf serve` **child processes** that self-register over
//! `/fleet/register` — puts it under closed-loop `/recommend` load, and
//! replays a seeded schedule of fault events against it:
//!
//! * **kill** — SIGKILL a replica; its lease must expire and evict the
//!   slot within one lease timeout, and a restart must re-admit it.
//! * **hang** — arm a long `serve.handler` delay on one replica; hedged
//!   reads and the circuit breaker must mask it.
//! * **slow-read** — a milder handler delay; hedges should fire and win.
//! * **torn-commit** — arm `serve.bundle.commit` on one replica and drive
//!   a fleet-wide rollout; it must abort and restore the old bundle on
//!   every replica (this is where mixed-generation responses would leak).
//! * **heartbeat-blackhole** — arm `serve.register.send` on a healthy
//!   replica; it must be evicted on lease expiry and re-admitted once its
//!   heartbeats resume.
//!
//! The event *schedule* (order, targets, fault parameters) is derived
//! entirely from the seed; wall-clock timing of course is not. Throughout
//! the run every 200 response is checked against a pre-captured baseline
//! (the `"items"` list the fleet served before any fault), so a response
//! scored from the aborted candidate bundle — a mixed-generation response
//! — is caught no matter when it happens. Invariants asserted:
//!
//! 1. zero mixed-generation responses,
//! 2. zero non-typed errors (every failure is a 503; no resets, no 500s),
//! 3. per-event-class error rates stay under their bounds,
//! 4. the ring converges (evicts) within one lease timeout of a kill,
//! 5. after full recovery the router's responses are byte-identical to a
//!    direct replica's.
//!
//! Used by the `chaos` bin (soak + `--smoke` for the tier-1 leg) and by
//! `serve_load --chaos`; both write `results/BENCH_fleet_chaos.json`.

use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_fleet::{
    rollout, start_router, FleetSpec, HedgePolicy, Replica, ReplicaConfig, ReplicaSpec,
    RouterConfig, RouterHandle,
};
use clapf_mf::{Init, MfModel};
use clapf_serve::ModelBundle;
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything that shapes one chaos run. Build via [`ChaosOptions::smoke`]
/// or [`ChaosOptions::soak`] and override fields as needed.
pub struct ChaosOptions {
    /// The `clapf` binary replicas are spawned from (see [`locate_clapf`]).
    pub exe: PathBuf,
    /// Report label (`"smoke"` / `"soak"`).
    pub label: String,
    /// Seed for the event schedule and the load clients.
    pub seed: u64,
    /// Replica process count.
    pub replicas: usize,
    /// Closed-loop load client threads.
    pub clients: usize,
    /// Users in the synthetic bundle (every request targets one of these).
    pub users: u32,
    /// Items in the synthetic bundle.
    pub items: u32,
    /// Factor dimension of the synthetic model.
    pub dim: usize,
    /// Membership lease TTL granted by the router.
    pub lease_ttl: Duration,
    /// Load-only warmup before the first event.
    pub warmup: Duration,
    /// Minimum wall clock devoted to each event (inject + recover + calm).
    pub event_window: Duration,
    /// Load-only tail after the last event, before the final byte-identity
    /// sweep.
    pub settle: Duration,
}

impl ChaosOptions {
    /// The tier-1 smoke shape: 2 replicas, short windows, ~12s total.
    pub fn smoke(exe: PathBuf, seed: u64) -> ChaosOptions {
        ChaosOptions {
            exe,
            label: "smoke".into(),
            seed,
            replicas: 2,
            clients: 2,
            users: 96,
            items: 400,
            dim: 8,
            lease_ttl: Duration::from_millis(600),
            warmup: Duration::from_millis(1200),
            event_window: Duration::from_millis(2200),
            settle: Duration::from_millis(800),
        }
    }

    /// The acceptance soak: 3 replicas, ≥30s under load.
    pub fn soak(exe: PathBuf, seed: u64) -> ChaosOptions {
        ChaosOptions {
            exe,
            label: "soak".into(),
            seed,
            replicas: 3,
            clients: 4,
            users: 160,
            items: 800,
            dim: 16,
            lease_ttl: Duration::from_millis(1000),
            warmup: Duration::from_secs(3),
            event_window: Duration::from_millis(5600),
            settle: Duration::from_secs(2),
        }
    }

    fn heartbeat_ms(&self) -> u64 {
        (self.lease_ttl.as_millis() as u64 / 3).max(50)
    }
}

/// Finds the `clapf` binary for replica processes: an explicit path, the
/// `CLAPF_BIN` environment variable, or a sibling of the running bench
/// binary (`target/<profile>/clapf`, present after `cargo build`).
pub fn locate_clapf(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        if p.is_file() {
            return Ok(p);
        }
        return Err(format!("--clapf {}: no such file", p.display()));
    }
    if let Ok(p) = std::env::var("CLAPF_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(format!("CLAPF_BIN={}: no such file", p.display()));
    }
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let p = dir.join("clapf");
            if p.is_file() {
                return Ok(p);
            }
        }
    }
    Err("cannot find the clapf binary: build it (cargo build --release -p clapf-cli) and pass \
         --clapf target/release/clapf (or set CLAPF_BIN)"
        .into())
}

/// The five scripted fault classes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EventClass {
    Kill,
    Hang,
    SlowRead,
    TornCommit,
    HeartbeatBlackhole,
}

impl EventClass {
    const ALL: [EventClass; 5] = [
        EventClass::Kill,
        EventClass::Hang,
        EventClass::SlowRead,
        EventClass::TornCommit,
        EventClass::HeartbeatBlackhole,
    ];

    fn name(self) -> &'static str {
        match self {
            EventClass::Kill => "kill",
            EventClass::Hang => "hang",
            EventClass::SlowRead => "slow_read",
            EventClass::TornCommit => "torn_commit",
            EventClass::HeartbeatBlackhole => "heartbeat_blackhole",
        }
    }

    /// Per-class error-rate bound over the event's window. Failover,
    /// hedging and degraded serving should keep the observed rates far
    /// below these; the bounds only have to exclude "the fleet fell over".
    fn error_bound(self) -> f64 {
        match self {
            EventClass::Kill => 0.10,
            EventClass::Hang => 0.20,
            EventClass::SlowRead => 0.10,
            EventClass::TornCommit => 0.15,
            EventClass::HeartbeatBlackhole => 0.05,
        }
    }
}

/// One chaos event as measured.
#[derive(Serialize)]
pub struct EventReport {
    /// Event class name (`kill`, `hang`, …).
    pub class: String,
    /// Slot index of the targeted replica.
    pub replica: usize,
    /// Injection time, seconds since load start.
    pub at_secs: f64,
    /// Window the per-class stats below are computed over.
    pub window_secs: f64,
    /// Requests completed inside the window.
    pub requests: u64,
    /// Non-200 responses inside the window.
    pub errors: u64,
    /// `errors / requests`.
    pub error_rate: f64,
    /// The class's bound on `error_rate`.
    pub error_bound: f64,
    /// Responses that were neither 200 nor a typed 503 (must be zero).
    pub untyped_errors: u64,
    /// 200s served stale from the degraded-mode fallback cache.
    pub degraded: u64,
    /// Injection → fleet fully recovered (class-specific definition).
    pub time_to_recover_ms: u64,
    /// Kill/blackhole only: slot evicted within one lease TTL (+ sweep
    /// slack) of heartbeats stopping.
    pub converged_within_lease: Option<bool>,
    /// Human note (what was armed, how recovery was detected).
    pub note: String,
}

/// Invariant verdicts, straight from the ISSUE's acceptance list.
#[derive(Serialize)]
pub struct ChaosInvariants {
    /// 200s whose items diverged from the pre-chaos baseline.
    pub mixed_generation_responses: u64,
    /// Transport errors / non-200-non-503 statuses across the whole run.
    pub untyped_errors: u64,
    /// Every event's error rate stayed under its class bound.
    pub error_rates_bounded: bool,
    /// Every kill/blackhole eviction landed within one lease TTL.
    pub converged_within_lease: bool,
    /// Post-recovery router responses byte-identical to a direct replica.
    pub recovered_byte_identical: bool,
}

/// The full run, as written to `results/BENCH_fleet_chaos.json`.
#[derive(Serialize)]
pub struct ChaosReport {
    /// `smoke` or `soak`.
    pub label: String,
    /// The schedule seed.
    pub seed: u64,
    /// Replica process count.
    pub replicas: usize,
    /// Load client threads.
    pub clients: usize,
    /// Users in the synthetic bundle.
    pub users: u32,
    /// Membership lease TTL.
    pub lease_ttl_ms: u64,
    /// Wall clock under load.
    pub duration_secs: f64,
    /// Total requests across all clients.
    pub requests: u64,
    /// Typed 503s.
    pub errors_typed: u64,
    /// Everything else that wasn't a 200 (must be zero).
    pub errors_untyped: u64,
    /// 200s stamped `X-Clapf-Degraded`.
    pub degraded_responses: u64,
    /// `fleet.hedge.fired` after the run.
    pub hedge_fired: u64,
    /// `fleet.hedge.wins` after the run.
    pub hedge_wins: u64,
    /// `hedge_wins / hedge_fired`.
    pub hedge_win_rate: f64,
    /// `fleet.breaker.trip` after the run.
    pub breaker_trips: u64,
    /// `fleet.breaker.close` after the run.
    pub breaker_closes: u64,
    /// `fleet.lease.expired` after the run.
    pub lease_expirations: u64,
    /// `fleet.member.readmitted` after the run.
    pub readmissions: u64,
    /// Per-event measurements, in schedule order.
    pub events: Vec<EventReport>,
    /// Invariant verdicts.
    pub invariants: ChaosInvariants,
    /// Everything that went wrong, human-readable. Empty on a clean run.
    pub failures: Vec<String>,
    /// The one bit tier-1 greps for.
    pub pass: bool,
}

/// One load-client observation.
struct Rec {
    at: f64,
    status: u16, // 0 = transport error
    degraded: bool,
    content_ok: bool,
}

/// Runs the full chaos schedule. `Err` is an environment problem (binary
/// missing, fleet never booted); invariant violations come back as a
/// report with `pass: false` so the caller can still write the JSON.
pub fn run_chaos(opts: &ChaosOptions) -> Result<ChaosReport, String> {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut failures: Vec<String> = Vec::new();

    let dir = std::env::temp_dir().join(format!("clapf-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("temp dir {}: {e}", dir.display()))?;
    let (bundle_path, candidate_path) = build_bundles(opts, &dir)?;

    // Router first (in-process), replicas register themselves as they boot.
    let registry = Arc::new(Registry::new());
    let router = start_router(
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: Vec::new(),
            workers: opts.clients + 2,
            health_interval: Duration::from_millis(150),
            lease_ttl: opts.lease_ttl,
            hedge: HedgePolicy {
                fixed_delay: Some(Duration::from_millis(30)),
                budget_ratio: 0.3,
                ..HedgePolicy::default()
            },
            fallback_cache: 2 * opts.users as usize,
            ..RouterConfig::default()
        },
        registry,
    )
    .map_err(|e| format!("start router: {e}"))?;

    let mut replicas = Vec::new();
    let mut bundles = Vec::new();
    for i in 0..opts.replicas {
        let bundle = dir.join(format!("replica-{i}.json"));
        std::fs::copy(&bundle_path, &bundle)
            .map_err(|e| format!("copy bundle for replica {i}: {e}"))?;
        let r = Replica::spawn(ReplicaConfig {
            exe: opts.exe.clone(),
            args: vec![
                "serve".into(),
                "--load".into(),
                bundle.display().to_string(),
                "--addr".into(),
                "127.0.0.1:0".into(),
                "--event-loop".into(),
                "on".into(),
                "--register".into(),
                router.addr().to_string(),
                "--name".into(),
                format!("replica-{i}"),
                "--heartbeat-ms".into(),
                opts.heartbeat_ms().to_string(),
                "--fault-control".into(),
            ],
            announce_timeout: Duration::from_secs(30),
        })
        .map_err(|e| format!("spawn replica {i}: {e}"))?;
        bundles.push(bundle);
        replicas.push(r);
    }

    // Registration is the replicas' own job here — no supervisor-side
    // register_member call: the harness waits for the heartbeats to land.
    wait_for("all replicas registered and alive", Duration::from_secs(30), || {
        let Ok((200, body)) = call(router.addr(), "GET", "/fleet/status") else {
            return false;
        };
        (0..opts.replicas).all(|i| {
            slot_field(&body, &format!("replica-{i}"), "alive").as_deref() == Some("true")
        })
    })?;

    // Baseline: the items list every user gets before any fault. Every 200
    // for the rest of the run is checked against this.
    let mut baselines = Vec::with_capacity(opts.users as usize);
    for u in 0..opts.users {
        let path = format!("/recommend/u{u}?k={K}");
        let body = retry_get_200(router.addr(), &path, Duration::from_secs(10))
            .map_err(|e| format!("baseline for u{u}: {e}"))?;
        let items = items_part(&body)
            .ok_or_else(|| format!("baseline for u{u}: no items in {body:?}"))?;
        baselines.push(items.to_string());
    }
    let baselines = Arc::new(baselines);

    // Load clients: closed-loop keep-alive GETs over the whole user space.
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for c in 0..opts.clients {
        let addr = router.addr();
        let stop = Arc::clone(&stop);
        let baselines = Arc::clone(&baselines);
        let users = opts.users;
        let seed = opts.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(c as u64 + 1));
        workers.push(
            std::thread::Builder::new()
                .name(format!("chaos-client-{c}"))
                .spawn(move || client_loop(addr, users, seed, t0, &stop, &baselines))
                .map_err(|e| format!("spawn client {c}: {e}"))?,
        );
    }

    std::thread::sleep(opts.warmup);

    // The seeded schedule: every class once, in a seed-shuffled order,
    // each aimed at a seed-chosen replica.
    let mut schedule = EventClass::ALL;
    for i in (1..schedule.len()).rev() {
        schedule.swap(i, rng.gen_range(0..(i + 1) as u64) as usize);
    }
    let mut events = Vec::new();
    for class in schedule {
        let target = rng.gen_range(0..opts.replicas as u64) as usize;
        let window_start = t0.elapsed();
        eprintln!(
            "chaos: t+{:.1}s {} -> replica-{target}",
            window_start.as_secs_f64(),
            class.name()
        );
        let mut ev = run_event(
            class,
            target,
            opts,
            &router,
            &mut replicas,
            &bundles,
            &candidate_path,
            &mut failures,
        );
        ev.at_secs = window_start.as_secs_f64();
        // Give the fleet the rest of the window to settle under plain load.
        let elapsed = t0.elapsed() - window_start;
        if elapsed < opts.event_window {
            std::thread::sleep(opts.event_window - elapsed);
        }
        ev.window_secs = (t0.elapsed() - window_start).as_secs_f64();
        events.push(ev);
    }

    std::thread::sleep(opts.settle);
    stop.store(true, Ordering::Relaxed);
    let mut recs: Vec<Vec<Rec>> = Vec::new();
    for w in workers {
        recs.push(w.join().map_err(|_| "client thread panicked".to_string())?);
    }
    let duration_secs = t0.elapsed().as_secs_f64();

    // Post-recovery byte-identity: for a sample of users, the router's
    // response body must be byte-identical to what one of the replicas
    // answers directly (the router relays byte-for-byte, so the replica
    // that actually served it must match exactly).
    let byte_identical = check_byte_identity(opts, &router, &replicas, &mut failures);
    check_fingerprints(&bundle_path, &replicas, &mut failures);

    // Counters, over the same /metrics surface operators would scrape.
    let metrics = call(router.addr(), "GET", "/metrics")
        .map(|(_, body)| body)
        .unwrap_or_default();
    let counter = |name: &str| metric_value(&metrics, name);

    for r in replicas {
        r.shutdown(Duration::from_secs(5));
    }
    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Fill the per-event request stats from the client records.
    let all: Vec<&Rec> = recs.iter().flatten().collect();
    for ev in &mut events {
        let (mut n, mut errors, mut untyped, mut degraded) = (0u64, 0u64, 0u64, 0u64);
        for r in all
            .iter()
            .filter(|r| r.at >= ev.at_secs && r.at < ev.at_secs + ev.window_secs)
        {
            n += 1;
            if r.status != 200 {
                errors += 1;
            }
            if r.status != 200 && r.status != 503 {
                untyped += 1;
            }
            if r.degraded {
                degraded += 1;
            }
        }
        ev.requests = n;
        ev.errors = errors;
        ev.error_rate = if n == 0 { 0.0 } else { errors as f64 / n as f64 };
        ev.untyped_errors = untyped;
        ev.degraded = degraded;
        if ev.error_rate > ev.error_bound {
            failures.push(format!(
                "{}: error rate {:.3} exceeds bound {:.2}",
                ev.class, ev.error_rate, ev.error_bound
            ));
        }
    }

    let requests = all.len() as u64;
    let errors_typed = all.iter().filter(|r| r.status == 503).count() as u64;
    let errors_untyped = all
        .iter()
        .filter(|r| r.status != 200 && r.status != 503)
        .count() as u64;
    let degraded_responses = all.iter().filter(|r| r.degraded).count() as u64;
    let mixed = all
        .iter()
        .filter(|r| r.status == 200 && !r.content_ok)
        .count() as u64;
    if mixed > 0 {
        failures.push(format!("{mixed} mixed-generation responses"));
    }
    if errors_untyped > 0 {
        failures.push(format!("{errors_untyped} untyped errors (resets/unexpected statuses)"));
    }
    let converged = events
        .iter()
        .all(|e| e.converged_within_lease.unwrap_or(true));
    if !converged {
        failures.push("ring did not converge within one lease timeout".into());
    }

    let hedge_fired = counter("fleet.hedge.fired");
    let hedge_wins = counter("fleet.hedge.wins");
    if hedge_fired == 0 || hedge_wins == 0 {
        failures.push(format!(
            "hedging never paid off (fired {hedge_fired}, wins {hedge_wins})"
        ));
    }
    let lease_expirations = counter("fleet.lease.expired");
    let readmissions = counter("fleet.member.readmitted");
    if lease_expirations == 0 || readmissions == 0 {
        failures.push(format!(
            "membership churn missing (lease expirations {lease_expirations}, readmissions \
             {readmissions})"
        ));
    }

    let error_rates_bounded = events.iter().all(|e| e.error_rate <= e.error_bound);
    let pass = failures.is_empty();
    Ok(ChaosReport {
        label: opts.label.clone(),
        seed: opts.seed,
        replicas: opts.replicas,
        clients: opts.clients,
        users: opts.users,
        lease_ttl_ms: opts.lease_ttl.as_millis() as u64,
        duration_secs,
        requests,
        errors_typed,
        errors_untyped,
        degraded_responses,
        hedge_fired,
        hedge_wins,
        hedge_win_rate: if hedge_fired == 0 {
            0.0
        } else {
            hedge_wins as f64 / hedge_fired as f64
        },
        breaker_trips: counter("fleet.breaker.trip"),
        breaker_closes: counter("fleet.breaker.close"),
        lease_expirations,
        readmissions,
        events,
        invariants: ChaosInvariants {
            mixed_generation_responses: mixed,
            untyped_errors: errors_untyped,
            error_rates_bounded,
            converged_within_lease: converged,
            recovered_byte_identical: byte_identical,
        },
        failures,
        pass,
    })
}

/// Requested list length for every `/recommend` in the harness.
const K: usize = 10;

/// Injects one event and measures its recovery; request stats are filled
/// in later from the client records.
#[allow(clippy::too_many_arguments)]
fn run_event(
    class: EventClass,
    target: usize,
    opts: &ChaosOptions,
    router: &RouterHandle,
    replicas: &mut [Replica],
    bundles: &[PathBuf],
    candidate: &std::path::Path,
    failures: &mut Vec<String>,
) -> EventReport {
    let name = format!("replica-{target}");
    let lease_ms = opts.lease_ttl.as_millis() as u64;
    // Lease expiry is checked against wall clock, but the *eviction* is
    // observed through a polled status endpoint — allow sweep + poll slack.
    let convergence_slack = Duration::from_millis(500);
    let mut report = EventReport {
        class: class.name().into(),
        replica: target,
        at_secs: 0.0,
        window_secs: 0.0,
        requests: 0,
        errors: 0,
        error_rate: 0.0,
        error_bound: class.error_bound(),
        untyped_errors: 0,
        degraded: 0,
        time_to_recover_ms: 0,
        converged_within_lease: None,
        note: String::new(),
    };
    let t0 = Instant::now();
    match class {
        EventClass::Kill => {
            replicas[target].kill();
            let evicted = wait_for(
                "killed slot evicted on lease expiry",
                opts.lease_ttl * 4 + Duration::from_secs(2),
                || slot_lease(router.addr(), &name).as_deref() == Some("\"expired\""),
            );
            match evicted {
                Ok(d) => {
                    report.converged_within_lease =
                        Some(d <= opts.lease_ttl + convergence_slack);
                    report.note = format!("evicted after {}ms; ", d.as_millis());
                }
                Err(e) => {
                    report.converged_within_lease = Some(false);
                    failures.push(format!("kill: {e}"));
                }
            }
            match replicas[target].restart() {
                Ok(addr) => {
                    // Re-admission is the *replica's* job: its heartbeat
                    // re-registers the same name into the same slot.
                    match wait_for(
                        "restarted replica re-admitted",
                        Duration::from_secs(10),
                        || {
                            slot_field(&status_body(router.addr()), &name, "alive").as_deref()
                                == Some("true")
                                && slot_lease(router.addr(), &name).as_deref()
                                    != Some("\"expired\"")
                        },
                    ) {
                        Ok(_) => report.note.push_str(&format!("readmitted on {addr}")),
                        Err(e) => failures.push(format!("kill: {e}")),
                    }
                }
                Err(e) => failures.push(format!("kill: restart failed: {e}")),
            }
            report.time_to_recover_ms = t0.elapsed().as_millis() as u64;
        }
        EventClass::Hang | EventClass::SlowRead => {
            let (ms, times) = match class {
                // Long enough that an unhedged read would blow its window,
                // bounded so the armed replica drains within the event.
                EventClass::Hang => ((opts.event_window.as_millis() as u64 / 7).max(200), 4),
                _ => ((opts.event_window.as_millis() as u64 / 45).max(40), 12),
            };
            let addr = replicas[target].addr();
            let arm = format!("/fault/arm?point=serve.handler&mode=delay&ms={ms}&times={times}");
            if let Err(e) = expect_200(addr, "POST", &arm) {
                failures.push(format!("{}: arming failed: {e}", class.name()));
            }
            report.note = format!("armed serve.handler delay {ms}ms x{times}; ");
            // Recovered = the replica answers /healthz promptly twice in a
            // row (the probes themselves burn through leftover armed hits).
            let mut prompt = 0;
            match wait_for("handler delay drained", Duration::from_secs(25), || {
                let t = Instant::now();
                let ok = matches!(call(addr, "GET", "/healthz"), Ok((200, _)));
                if ok && t.elapsed() < Duration::from_millis(ms.min(150)) {
                    prompt += 1;
                } else {
                    prompt = 0;
                }
                prompt >= 2
            }) {
                Ok(d) => {
                    report.time_to_recover_ms = d.as_millis() as u64;
                    report.note.push_str("drained");
                }
                Err(e) => failures.push(format!("{}: {e}", class.name())),
            }
        }
        EventClass::TornCommit => {
            let addr = replicas[target].addr();
            if let Err(e) = expect_200(
                addr,
                "POST",
                "/fault/arm?point=serve.bundle.commit&mode=io&times=1",
            ) {
                failures.push(format!("torn_commit: arming failed: {e}"));
            }
            let spec = FleetSpec {
                router: Some(router.addr()),
                replicas: replicas
                    .iter()
                    .zip(bundles)
                    .map(|(r, b)| ReplicaSpec {
                        addr: r.addr(),
                        bundle: b.clone(),
                    })
                    .collect(),
            };
            match rollout(&spec, candidate) {
                Err(e) => {
                    report.time_to_recover_ms = t0.elapsed().as_millis() as u64;
                    report.note = format!("rollout aborted as expected: {e}");
                }
                Ok(_) => {
                    // The torn commit went through — every baseline is now
                    // wrong and the mixed-generation count will explode.
                    failures
                        .push("torn_commit: rollout succeeded despite armed commit fault".into());
                }
            }
        }
        EventClass::HeartbeatBlackhole => {
            // Enough swallowed beats to overshoot the lease comfortably.
            let times = (3 * lease_ms / opts.heartbeat_ms()).max(4) + 2;
            let addr = replicas[target].addr();
            let arm = format!("/fault/arm?point=serve.register.send&mode=io&times={times}");
            if let Err(e) = expect_200(addr, "POST", &arm) {
                failures.push(format!("heartbeat_blackhole: arming failed: {e}"));
            }
            report.note = format!("blackholed {times} heartbeats; ");
            match wait_for(
                "blackholed slot evicted",
                opts.lease_ttl * 6 + Duration::from_secs(2),
                || slot_lease(router.addr(), &name).as_deref() == Some("\"expired\""),
            ) {
                Ok(d) => {
                    report.converged_within_lease =
                        Some(d <= opts.lease_ttl + convergence_slack);
                    report.note.push_str(&format!("evicted after {}ms; ", d.as_millis()));
                }
                Err(e) => {
                    report.converged_within_lease = Some(false);
                    failures.push(format!("heartbeat_blackhole: {e}"));
                }
            }
            match wait_for(
                "resumed heartbeats re-admit the slot",
                Duration::from_millis(times * opts.heartbeat_ms()) + Duration::from_secs(5),
                || slot_lease(router.addr(), &name).is_some_and(|l| l != "\"expired\""),
            ) {
                Ok(_) => report.time_to_recover_ms = t0.elapsed().as_millis() as u64,
                Err(e) => failures.push(format!("heartbeat_blackhole: {e}")),
            }
        }
    }
    report
}

/// One closed-loop load client; returns its observations.
fn client_loop(
    addr: SocketAddr,
    users: u32,
    seed: u64,
    t0: Instant,
    stop: &AtomicBool,
    baselines: &[String],
) -> Vec<Rec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut recs = Vec::new();
    let mut conn = connect(addr).ok();
    while !stop.load(Ordering::Relaxed) {
        let u = rng.gen_range(0..users as u64) as u32;
        let path = format!("/recommend/u{u}?k={K}");
        let at = t0.elapsed().as_secs_f64();
        // One transparent reconnect: a keep-alive the server closed between
        // requests is not an error. A failure on a fresh connection is.
        let out = match conn.as_mut().map(|c| roundtrip(c, &path)) {
            Some(Ok(r)) => Ok(r),
            _ => match connect(addr) {
                Ok(mut fresh) => {
                    let r = roundtrip(&mut fresh, &path);
                    conn = Some(fresh);
                    r.map_err(|e| e.to_string())
                }
                Err(e) => Err(e.to_string()),
            },
        };
        match out {
            Ok((status, degraded, body)) => {
                let content_ok = status != 200
                    || items_part(&body).map(str::as_bytes) == Some(baselines[u as usize].as_bytes());
                recs.push(Rec {
                    at,
                    status,
                    degraded,
                    content_ok,
                });
            }
            Err(_) => {
                recs.push(Rec {
                    at,
                    status: 0,
                    degraded: false,
                    content_ok: true,
                });
                conn = None;
            }
        }
    }
    recs
}

/// Post-recovery sweep: warm each probe user once through the router, then
/// require the router's body to be byte-identical to a direct fetch from
/// at least one replica (the one it relayed from).
fn check_byte_identity(
    opts: &ChaosOptions,
    router: &RouterHandle,
    replicas: &[Replica],
    failures: &mut Vec<String>,
) -> bool {
    let sample = opts.users.min(48);
    for u in 0..sample {
        let _ = call(router.addr(), "GET", &format!("/recommend/u{u}?k={K}"));
    }
    let mut ok = true;
    for u in 0..sample {
        let path = format!("/recommend/u{u}?k={K}");
        let via_router = match retry_get_200(router.addr(), &path, Duration::from_secs(10)) {
            Ok(b) => b,
            Err(e) => {
                failures.push(format!("byte-identity: router GET u{u}: {e}"));
                ok = false;
                continue;
            }
        };
        let direct: Vec<String> = replicas
            .iter()
            .filter_map(|r| match call(r.addr(), "GET", &path) {
                Ok((200, body)) => Some(body),
                _ => None,
            })
            .collect();
        if !direct.contains(&via_router) {
            failures.push(format!(
                "byte-identity: router body for u{u} matches no direct replica response"
            ));
            ok = false;
        }
    }
    ok
}

/// After the torn commit every replica must still serve the original
/// bundle's fingerprint.
fn check_fingerprints(
    bundle_path: &std::path::Path,
    replicas: &[Replica],
    failures: &mut Vec<String>,
) {
    let Ok(bytes) = std::fs::read(bundle_path) else {
        failures.push("fingerprint check: cannot read original bundle".into());
        return;
    };
    let want = format!("{:016x}", clapf_serve::fingerprint64(&bytes));
    for (i, r) in replicas.iter().enumerate() {
        match call(r.addr(), "GET", "/bundle/fingerprint") {
            Ok((200, body)) if body.contains(&want) => {}
            Ok((_, body)) => failures.push(format!(
                "replica {i} fingerprint drifted after torn commit: {body}"
            )),
            Err(e) => failures.push(format!("replica {i} fingerprint check: {e}")),
        }
    }
}

/// Builds the synthetic live bundle and a rollout candidate with a
/// different fingerprint (fresh factor init).
fn build_bundles(opts: &ChaosOptions, dir: &std::path::Path) -> Result<(PathBuf, PathBuf), String> {
    let mut csv = String::new();
    for u in 0..opts.users {
        for t in 0..8u32 {
            let i = (u * 13 + t * 97) % opts.items;
            csv.push_str(&format!("u{u},i{i},5\n"));
        }
    }
    let mut paths = Vec::new();
    for (tag, seed) in [("bundle", opts.seed), ("candidate", opts.seed ^ 0xC4A05)] {
        let loaded = load_ratings_reader(std::io::Cursor::new(csv.as_bytes()), Separator::Comma, 3.0)
            .map_err(|e| format!("synthetic ratings: {e}"))?;
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = MfModel::new(
            loaded.interactions.n_users(),
            loaded.interactions.n_items(),
            opts.dim,
            Init::default(),
            &mut rng,
        );
        let bundle = ModelBundle::new(
            format!("chaos fixture {tag} d={}", opts.dim),
            model,
            loaded.ids,
            &loaded.interactions,
        );
        let path = dir.join(format!("{tag}.json"));
        bundle
            .save(&path)
            .map_err(|e| format!("save {tag}: {e}"))?;
        paths.push(path);
    }
    Ok((paths.remove(0), paths.remove(0)))
}

// ---------------------------------------------------------------------------
// Small HTTP + parsing helpers (std-only, mirroring the integration tests).

/// A keep-alive connection to the router.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: SocketAddr) -> std::io::Result<Conn> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok(Conn {
        writer: stream,
        reader,
    })
}

/// One keep-alive GET; returns (status, degraded, body).
fn roundtrip(conn: &mut Conn, path: &str) -> std::io::Result<(u16, bool, String)> {
    write!(conn.writer, "GET {path} HTTP/1.1\r\nHost: c\r\n\r\n")?;
    let mut line = String::new();
    if conn.reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad status {line:?}"))
        })?;
    let mut degraded = false;
    let mut content_length = 0usize;
    loop {
        line.clear();
        conn.reader.read_line(&mut line)?;
        let h = line.trim_end().to_ascii_lowercase();
        if h.is_empty() {
            break;
        }
        if h.starts_with("x-clapf-degraded:") {
            degraded = true;
        }
        if let Some(v) = h.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
            })?;
        }
    }
    let mut body = vec![0u8; content_length];
    conn.reader.read_exact(&mut body)?;
    Ok((status, degraded, String::from_utf8_lossy(&body).into_owned()))
}

/// One-shot control-plane call (`Connection: close`); returns (status, body).
fn call(addr: SocketAddr, method: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .map_err(|e| e.to_string())?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: c\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad response {raw:?}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn expect_200(addr: SocketAddr, method: &str, path: &str) -> Result<String, String> {
    match call(addr, method, path)? {
        (200, body) => Ok(body),
        (status, body) => Err(format!("{method} {path}: {status} {body}")),
    }
}

/// GETs until a 200 lands (the fleet may be mid-failover).
fn retry_get_200(addr: SocketAddr, path: &str, deadline: Duration) -> Result<String, String> {
    let t0 = Instant::now();
    loop {
        match call(addr, "GET", path) {
            Ok((200, body)) => return Ok(body),
            other if t0.elapsed() > deadline => {
                return Err(format!("no 200 within {deadline:?}: last {other:?}"))
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Polls `check` until it holds; returns how long it took.
fn wait_for(
    what: &str,
    deadline: Duration,
    mut check: impl FnMut() -> bool,
) -> Result<Duration, String> {
    let t0 = Instant::now();
    loop {
        if check() {
            return Ok(t0.elapsed());
        }
        if t0.elapsed() > deadline {
            return Err(format!("timed out after {deadline:?} waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(40));
    }
}

/// The model-content part of a `/recommend` body: everything from
/// `"items":` on. The fields before it (`generation`, `cached`) are
/// replica-local and legitimately vary across restarts; the items are the
/// part a mixed-generation response would corrupt.
fn items_part(body: &str) -> Option<&str> {
    body.find("\"items\":").map(|i| &body[i..])
}

fn status_body(addr: SocketAddr) -> String {
    call(addr, "GET", "/fleet/status")
        .map(|(_, b)| b)
        .unwrap_or_default()
}

/// The raw JSON value of `field` in the `/fleet/status` entry for `name`
/// (fields rendered after `"name"`: `alive`, `lease_ms`, `breaker`).
fn slot_field(status: &str, name: &str, field: &str) -> Option<String> {
    let at = status.find(&format!("\"name\":\"{name}\""))?;
    let rest = &status[at..];
    let f = rest.find(&format!("\"{field}\":"))? + field.len() + 3;
    let rest = &rest[f..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].to_string())
}

fn slot_lease(addr: SocketAddr, name: &str) -> Option<String> {
    slot_field(&status_body(addr), name, "lease_ms")
}

/// Reads one counter from a Prometheus text dump (dotted names render with
/// underscores). Missing counters read as 0 — never created means never
/// incremented.
fn metric_value(metrics: &str, dotted: &str) -> u64 {
    let flat = dotted.replace('.', "_");
    for line in metrics.lines() {
        if let Some(v) = line.strip_prefix(&format!("{flat} ")) {
            return v.trim().parse::<f64>().unwrap_or(0.0) as u64;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_field_extracts_values_from_a_status_body() {
        let body = r#"{"paused":false,"replicas":[{"slot":0,"name":"replica-0","addr":"1.2.3.4:9","alive":true,"inflight":0,"lease_ms":512,"breaker":"closed"},{"slot":1,"name":"replica-1","addr":"1.2.3.4:10","alive":false,"inflight":2,"lease_ms":"expired","breaker":"open"}]}"#;
        assert_eq!(slot_field(body, "replica-0", "alive").as_deref(), Some("true"));
        assert_eq!(slot_field(body, "replica-0", "lease_ms").as_deref(), Some("512"));
        assert_eq!(
            slot_field(body, "replica-1", "lease_ms").as_deref(),
            Some("\"expired\"")
        );
        assert_eq!(slot_field(body, "replica-2", "alive"), None);
    }

    #[test]
    fn metric_value_reads_flat_counters_and_defaults_to_zero() {
        let dump = "# TYPE fleet_hedge_fired counter\nfleet_hedge_fired 7\nfleet_hedge_wins 3\n";
        assert_eq!(metric_value(dump, "fleet.hedge.fired"), 7);
        assert_eq!(metric_value(dump, "fleet.hedge.wins"), 3);
        assert_eq!(metric_value(dump, "fleet.breaker.trip"), 0);
    }

    #[test]
    fn the_event_schedule_is_a_pure_function_of_the_seed() {
        let order = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut s = EventClass::ALL;
            for i in (1..s.len()).rev() {
                s.swap(i, rng.gen_range(0..(i + 1) as u64) as usize);
            }
            s.map(|c| c.name())
        };
        assert_eq!(order(42), order(42));
        let mut names = order(7).to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5, "a shuffle keeps every class exactly once");
    }
}
