//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary accepts `--fast` (seconds, CI-sized), `--medium` (minutes)
//! or `--paper` (full fidelity; hours for Table 2) plus `--out DIR` for the
//! JSON artifacts (default `results/`).

use clapf_eval::RunScale;
use std::path::PathBuf;

pub mod chaos;

/// Parsed command line shared by all binaries.
pub struct Cli {
    /// The selected run scale.
    pub scale: RunScale,
    /// Output directory for JSON artifacts.
    pub out_dir: PathBuf,
    /// Human label of the scale, for file names and logs.
    pub scale_name: &'static str,
}

impl Cli {
    /// Parses `std::env::args`, defaulting to `--fast`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Like [`parse`](Cli::parse) but silently skips the listed
    /// binary-specific flags (e.g. `--tune`).
    pub fn parse_ignoring(extra_flags: &[&str]) -> Cli {
        let args: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !extra_flags.contains(&a.as_str()))
            .collect();
        Self::from_args(&args)
    }

    /// Parses an explicit argument list (testable).
    pub fn from_args(args: &[String]) -> Cli {
        let mut scale = RunScale::fast();
        let mut scale_name = "fast";
        let mut out_dir = PathBuf::from("results");
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--fast" => {
                    scale = RunScale::fast();
                    scale_name = "fast";
                }
                "--medium" => {
                    scale = RunScale::medium();
                    scale_name = "medium";
                }
                "--paper" => {
                    scale = RunScale::paper();
                    scale_name = "paper";
                }
                "--out" => {
                    out_dir =
                        PathBuf::from(it.next().expect("--out requires a directory argument"));
                }
                "--seed" => {
                    scale.seed = it
                        .next()
                        .expect("--seed requires a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                other => {
                    eprintln!("warning: ignoring unknown argument {other:?}");
                }
            }
        }
        Cli {
            scale,
            out_dir,
            scale_name,
        }
    }

    /// Path of the JSON artifact for an experiment name.
    pub fn json_path(&self, experiment: &str) -> PathBuf {
        self.out_dir
            .join(format!("{experiment}-{}.json", self.scale_name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_is_fast() {
        let cli = Cli::from_args(&[]);
        assert_eq!(cli.scale_name, "fast");
        assert_eq!(cli.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn paper_flag_selects_full_scale() {
        let cli = Cli::from_args(&args(&["--paper", "--out", "/tmp/x"]));
        assert_eq!(cli.scale_name, "paper");
        assert_eq!(cli.scale.dataset_shrink, 1);
        assert_eq!(
            cli.json_path("table2"),
            PathBuf::from("/tmp/x/table2-paper.json")
        );
    }

    #[test]
    fn seed_override() {
        let cli = Cli::from_args(&args(&["--seed", "99"]));
        assert_eq!(cli.scale.seed, 99);
    }
}
