//! Fault-tolerance overhead harness: what the robustness layer costs when
//! nothing is failing. Three measurements back the acceptance bound
//! (disabled-failpoint deltas ≤ 2%):
//!
//! * the per-call cost of a **disarmed failpoint** (`clapf_faults::check`
//!   when the global kill switch is off — one relaxed atomic load),
//! * the wall-time delta of the **crash-safe trainer**
//!   ([`Clapf::fit_resumable`]) over the plain serial `fit` with a sparse
//!   checkpoint cadence (so the delta isolates the machinery, not disk),
//! * the throughput of the **guarded atomic write**
//!   ([`clapf_faults::write_all`]) against a plain `write_all`.
//!
//! Emits `results/BENCH_faults.json`. The harness also re-asserts the
//! bit-identity contract: the resumable fit must learn *identical* weights
//! to `fit` from the same base seed, or the times compare different work.

use bench::Cli;
use clapf_core::{CheckpointConfig, Clapf, ClapfConfig, NoopObserver};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::Interactions;
use clapf_eval::report;
use clapf_mf::MfModel;
use clapf_sampling::{DssMode, DssSampler};
use clapf_telemetry::timed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::io::Write;

#[derive(Serialize)]
struct FaultOverheadReport {
    iterations: usize,
    runs: usize,
    available_cores: usize,
    /// Per-call cost of a disarmed failpoint, nanoseconds.
    check_disabled_ns: f64,
    /// Plain serial `fit`, best-of-N seconds.
    baseline_secs: f64,
    /// `fit_resumable` (sparse cadence: one initial + one final
    /// checkpoint), best-of-N seconds.
    resumable_secs: f64,
    resumable_overhead_pct: f64,
    /// Plain `write_all` call into a no-op sink, nanoseconds per call.
    raw_write_ns_per_call: f64,
    /// `clapf_faults::write_all` into the same sink, nanoseconds per call.
    guarded_write_ns_per_call: f64,
    /// The guard's absolute cost per write call, nanoseconds.
    guard_ns_per_call: f64,
    payload_bytes: usize,
}

fn world() -> Interactions {
    let cfg = WorldConfig {
        n_users: 400,
        n_items: 700,
        target_pairs: 20_000,
        ..WorldConfig::default()
    };
    generate(&cfg, &mut SmallRng::seed_from_u64(1)).unwrap()
}

/// A `Write` that consumes bytes at memcpy-ish speed, so the write bench
/// measures the guard, not the disk.
struct Devour(u64);

impl Write for Devour {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 = self.0.wrapping_add(buf.len() as u64);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() {
    let cli = Cli::parse();
    let data = world();
    let (iterations, runs) = match cli.scale_name {
        "fast" => (100_000, 15usize),
        _ => (1_000_000, 7),
    };
    let trainer = Clapf::new(ClapfConfig {
        dim: 16,
        iterations,
        ..ClapfConfig::map(0.4)
    });
    let base_seed = cli.scale.seed;

    // --- disarmed failpoint: per-call cost of the fast path -------------
    let check_calls = 50_000_000u64;
    clapf_faults::reset();
    let (hits, wall) = timed(|| {
        let mut n = 0u64;
        for _ in 0..check_calls {
            if clapf_faults::check(black_box("bench.nonexistent")).is_ok() {
                n += 1;
            }
        }
        n
    });
    assert_eq!(hits, check_calls);
    let check_disabled_ns = wall.as_secs_f64() * 1e9 / check_calls as f64;

    // --- fit vs fit_resumable -------------------------------------------
    let ckpt_dir = std::env::temp_dir().join(format!("clapf-bench-faults-{}", std::process::id()));
    let ckpt = CheckpointConfig {
        // Sparse cadence: only the epoch-0 safety checkpoint and the final
        // one get written, so disk time does not drown the loop overhead.
        every_epochs: 1_000_000,
        resume: false,
        ..CheckpointConfig::new(ckpt_dir.clone())
    };
    let baseline = || {
        let mut rng = SmallRng::seed_from_u64(base_seed);
        let mut sampler = DssSampler::dss(DssMode::Map);
        let (m, _) = trainer.fit(&data, &mut sampler, &mut rng);
        m.mf
    };
    let resumable = || {
        let mut sampler = DssSampler::dss(DssMode::Map);
        let (m, _) = trainer
            .fit_resumable(&data, &mut sampler, base_seed, &ckpt, &mut NoopObserver)
            .expect("resumable fit");
        m.mf
    };

    let mut base_model: Option<MfModel> = None;
    let mut resumable_model: Option<MfModel> = None;
    black_box(baseline());
    let (mut baseline_secs, mut resumable_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..runs {
        let (m, wall) = timed(baseline);
        baseline_secs = baseline_secs.min(wall.as_secs_f64());
        base_model = Some(m);
        let (m, wall) = timed(resumable);
        resumable_secs = resumable_secs.min(wall.as_secs_f64());
        resumable_model = Some(m);
    }
    std::fs::remove_dir_all(&ckpt_dir).ok();
    assert_eq!(
        base_model.unwrap().params_sq_norm().to_bits(),
        resumable_model.unwrap().params_sq_norm().to_bits(),
        "fit_resumable diverged from fit — the times compare different work"
    );

    // --- guarded vs raw write -------------------------------------------
    // The guard is one relaxed atomic load per call; a no-op sink and many
    // small writes make that per-call cost measurable in isolation.
    let payload = vec![0xA5u8; 4096];
    let write_calls = 20_000_000usize;
    let (mut raw_write_ns, mut guarded_write_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..runs.min(5) {
        let (_, wall) = timed(|| {
            let mut sink = Devour(0);
            for _ in 0..write_calls {
                sink.write_all(black_box(&payload)).unwrap();
            }
            black_box(sink.0)
        });
        raw_write_ns = raw_write_ns.min(wall.as_secs_f64() * 1e9 / write_calls as f64);
        let (_, wall) = timed(|| {
            let mut sink = Devour(0);
            for _ in 0..write_calls {
                clapf_faults::write_all(black_box("bench.write"), &mut sink, black_box(&payload))
                    .unwrap();
            }
            black_box(sink.0)
        });
        guarded_write_ns = guarded_write_ns.min(wall.as_secs_f64() * 1e9 / write_calls as f64);
    }

    let pct = |a: f64, b: f64| (a - b) / b * 100.0;
    let out = FaultOverheadReport {
        iterations,
        runs,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        check_disabled_ns,
        baseline_secs,
        resumable_secs,
        resumable_overhead_pct: pct(resumable_secs, baseline_secs),
        raw_write_ns_per_call: raw_write_ns,
        guarded_write_ns_per_call: guarded_write_ns,
        guard_ns_per_call: (guarded_write_ns - raw_write_ns).max(0.0),
        payload_bytes: payload.len(),
    };
    eprintln!(
        "disarmed check {check_disabled_ns:.2}ns/call; fit {baseline_secs:.3}s vs resumable \
         {resumable_secs:.3}s ({:+.2}%); write {raw_write_ns:.2}ns vs guarded \
         {guarded_write_ns:.2}ns per call (guard {:.2}ns)",
        out.resumable_overhead_pct, out.guard_ns_per_call
    );
    let path = cli.out_dir.join("BENCH_faults.json");
    report::write_json(&path, &out).expect("write fault overhead results");
    eprintln!("wrote {}", path.display());
}
