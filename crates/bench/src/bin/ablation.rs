//! Regenerates the DSS design ablations called out in DESIGN.md
//! (ranking-list refresh cadence and geometric-tail concentration).

use bench::Cli;
use clapf_eval::{ablation, report};

fn main() {
    let cli = Cli::parse();
    let results = ablation::run(&cli.scale, |line| eprintln!("{line}"));
    println!("{}", ablation::render(&results));
    let path = cli.json_path("ablation");
    report::write_json(&path, &results).expect("write results");
    eprintln!("wrote {}", path.display());
}
