//! Extension study: NDCG@5 / MAP of BPR vs CLAPF-MAP as the training set
//! grows (see `clapf_eval::learning_curve`).

use bench::Cli;
use clapf_eval::{learning_curve, report};

fn main() {
    let cli = Cli::parse();
    let curve = learning_curve::run(&cli.scale, |line| eprintln!("{line}"));
    println!("{}", learning_curve::render(&curve));
    let path = cli.json_path("learning_curve");
    report::write_json(&path, &curve).expect("write results");
    eprintln!("wrote {}", path.display());
}
