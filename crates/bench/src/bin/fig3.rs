//! Regenerates Fig. 3 (CLAPF performance across the tradeoff λ).

use bench::Cli;
use clapf_eval::{fig3, report};

fn main() {
    let cli = Cli::parse();
    let results = fig3::run(&cli.scale, |line| eprintln!("{line}"));
    for sweep in &results {
        println!("{}", fig3::render(sweep));
    }
    let path = cli.json_path("fig3");
    report::write_json(&path, &results).expect("write results");
    eprintln!("wrote {}", path.display());
}
