//! Regenerates Table 1 (dataset description).

use bench::Cli;
use clapf_eval::{report, table1};

fn main() {
    let cli = Cli::parse();
    let rows = table1::run(&cli.scale);
    println!("{}", table1::render(&rows));
    let path = cli.json_path("table1");
    report::write_json(&path, &rows).expect("write results");
    eprintln!("wrote {}", path.display());
}
