//! Micro-bench for the serve miss-path compute floor: per-user cost of
//! `scores_into_batch` + `top_k_from_scores` at the serve_load fast scale
//! (5k items, dim 32, k 10), across batch sizes. This is the ceiling on
//! uncached QPS before any transport overhead — useful for telling "the
//! kernel is slow" apart from "the server is slow" when serve_load moves.
use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_metrics::BulkScorer;
use clapf_mf::{Init, MfModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let (n_users, n_items, dim) = (2000u32, 5000u32, 32usize);
    let mut csv = String::new();
    for u in 0..n_users {
        for t in 0..8u32 {
            let i = (u * 13 + t * 97) % n_items;
            csv.push_str(&format!("u{u},i{i},5\n"));
        }
    }
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        dim,
        Init::default(),
        &mut rng,
    );
    for batch in [1usize, 4, 16, 32] {
        let users: Vec<clapf_data::UserId> =
            (0..batch as u32).map(clapf_data::UserId).collect();
        let mut bufs: Vec<Vec<f32>> = (0..batch).map(|_| Vec::new()).collect();
        let iters = 2000 / batch;
        let t = Instant::now();
        for _ in 0..iters {
            model.scores_into_batch(&users, &mut bufs);
        }
        let score_us = t.elapsed().as_secs_f64() * 1e6 / (iters * batch) as f64;
        let mut items = Vec::new();
        let t = Instant::now();
        for _ in 0..iters {
            for b in &bufs {
                clapf_metrics::top_k_from_scores(
                    b,
                    &loaded.interactions,
                    clapf_data::UserId(0),
                    10,
                    &mut items,
                );
            }
        }
        let topk_us = t.elapsed().as_secs_f64() * 1e6 / (iters * batch) as f64;
        println!(
            "batch {batch:>2}: score {score_us:.1} us/user, topk {topk_us:.1} us/user, \
             total {:.1} us/user -> {:.0} users/sec",
            score_us + topk_us,
            1e6 / (score_us + topk_us)
        );
    }
}
