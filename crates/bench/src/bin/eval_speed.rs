//! Sort-free ranking-engine speedup over the retained full-sort evaluator,
//! on an MF-backed scorer across a users × items grid at d = 32. Asserts
//! the two engines return *equal* reports (the bit-identity contract) and
//! emits `results/BENCH_eval.json` so the perf trajectory is
//! machine-readable across PRs.
//!
//! Speedup is hardware-bound; the JSON records the machine's core count so
//! numbers from a small container are not mistaken for a regression.

use bench::Cli;
use clapf_data::{Interactions, InteractionsBuilder, ItemId, UserId};
use clapf_eval::report;
use clapf_metrics::{evaluate_serial, evaluate_serial_naive, EvalConfig};
use clapf_mf::{Init, MfModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use clapf_telemetry::{per_sec, timed};
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct EvalRow {
    n_users: u32,
    n_items: u32,
    naive_secs: f64,
    sortfree_secs: f64,
    speedup: f64,
    users_per_sec: f64,
}

#[derive(Serialize)]
struct EvalSpeedReport {
    dim: usize,
    available_cores: usize,
    rows: Vec<EvalRow>,
}

/// Deterministic split: 8 train + 4 test items per user, strided so every
/// user touches a different slice of the catalogue.
fn interactions(n_users: u32, n_items: u32) -> (Interactions, Interactions) {
    let mut tr = InteractionsBuilder::new(n_users, n_items);
    let mut te = InteractionsBuilder::new(n_users, n_items);
    for u in 0..n_users {
        for t in 0..8u32 {
            tr.push(UserId(u), ItemId((u * 13 + t * 97) % n_items)).ok();
        }
        for t in 0..4u32 {
            te.push(UserId(u), ItemId((u * 29 + t * 53 + 7) % n_items)).ok();
        }
    }
    (tr.build().unwrap(), te.build().unwrap())
}

fn time_runs<F: FnMut()>(mut f: F, runs: usize) -> std::time::Duration {
    // Best-of-N wall time: robust to one-off scheduler noise.
    let mut best = std::time::Duration::MAX;
    for _ in 0..runs {
        let ((), wall) = timed(&mut f);
        best = best.min(wall);
    }
    best
}

fn main() {
    let cli = Cli::parse();
    let dim = 32usize;
    let runs = 3usize;
    let grid: &[(u32, u32)] = &[(500, 5_000), (1_000, 10_000), (2_000, 20_000)];

    let mut rows = Vec::new();
    for &(n_users, n_items) in grid {
        let mut rng = SmallRng::seed_from_u64(cli.scale.seed);
        let model = MfModel::new(n_users, n_items, dim, Init::default(), &mut rng);
        let (train, test) = interactions(n_users, n_items);
        let cfg = EvalConfig::default();

        // The two engines must agree exactly before their times mean anything.
        let fast = evaluate_serial(&model, &train, &test, &cfg);
        let naive = evaluate_serial_naive(&model, &train, &test, &cfg);
        assert_eq!(fast, naive, "engines disagree at {n_users}×{n_items}");

        let naive_wall = time_runs(
            || {
                black_box(evaluate_serial_naive(&model, &train, &test, &cfg));
            },
            runs,
        );
        let sortfree_wall = time_runs(
            || {
                black_box(evaluate_serial(&model, &train, &test, &cfg));
            },
            runs,
        );
        let naive_secs = naive_wall.as_secs_f64();
        let sortfree_secs = sortfree_wall.as_secs_f64();
        let speedup = naive_secs / sortfree_secs;
        let users_per_sec = per_sec(fast.n_users, sortfree_wall);
        eprintln!(
            "{n_users} users × {n_items} items: naive {naive_secs:.3}s, \
             sortfree {sortfree_secs:.3}s ({speedup:.2}×, {users_per_sec:.0} users/sec)"
        );
        rows.push(EvalRow {
            n_users,
            n_items,
            naive_secs,
            sortfree_secs,
            speedup,
            users_per_sec,
        });
    }

    let out = EvalSpeedReport {
        dim,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rows,
    };
    let path = cli.out_dir.join("BENCH_eval.json");
    report::write_json(&path, &out).expect("write eval speed results");
    eprintln!("wrote {}", path.display());
}
