//! Load generator for the `clapf-serve` HTTP server.
//!
//! Boots real servers (in-process, ephemeral ports) on a synthetic bundle
//! and drives `GET /recommend/{user}?k=10` from keep-alive clients whose
//! user ids follow a Zipf distribution — the skew that makes a top-k cache
//! pay. Results land in `results/BENCH_serve.json`.
//!
//! Two modes per leg:
//!
//! * **closed** — each client sends its next request the moment the
//!   previous response lands; measures saturated QPS and in-flight latency.
//! * **open** — requests arrive on a fixed schedule regardless of how the
//!   server is doing; latency is measured from the *intended* send time, so
//!   queueing delay is charged honestly (no coordinated omission), and
//!   overload shows up as a shed (503) rate instead of a silently slower
//!   client.
//!
//! The leg matrix compares the thread-per-connection transport against the
//! event loop with micro-batched scoring (batch 32 vs. 1 — the batching
//! A/B), each with the cache on and off. The headline number for ISSUE 7:
//! uncached event-loop QPS must land within 2× of cached.
//!
//! A final `--fleet N` section (ISSUE 9) boots a `clapf-fleet` router in
//! front of N event-loop replicas and records fleet QPS (N vs. 1 through
//! the same router), the failover blip when a replica dies mid-load, and
//! the rollout commit window (downtime) of a fleet-wide two-phase bundle
//! rollout under load.
//!
//! `--chaos` (ISSUE 10) replaces the matrix with the deterministic chaos
//! leg: real replica child processes under a seeded fault schedule, with
//! per-event-class error rates, times-to-recover and the hedge win rate
//! written to `results/BENCH_fleet_chaos.json` (see [`bench::chaos`]).

use bench::Cli;
use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_eval::report;
use clapf_fleet::{rollout, FleetSpec, ReplicaSpec, RouterConfig, RouterHandle};
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig, ServerHandle, Transport};
use clapf_telemetry::{Histogram, Registry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every leg samples 1-in-this requests into the trace ring; the per-stage
/// means below attribute where cached vs. uncached time actually goes.
/// Sparse enough that the overhead gate (≤ 2%, `trace_overhead`) applies.
const TRACE_SAMPLE: u64 = 32;

/// Zipf(s) sampler over `0..n` via a precomputed CDF and binary search.
/// Hand-rolled: the vendored `rand` has no distribution zoo.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

/// One keep-alive request; returns the response status. Panics on protocol
/// errors — a load generator that silently drops errors measures nothing —
/// but passes 503 through so open-loop legs can count sheds.
fn request(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, path: &str) -> u16 {
    write!(writer, "GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").expect("send request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    assert!(
        status == 200 || status == 503,
        "unexpected response: {line:?}"
    );
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(|v| v.trim().to_string())
        {
            content_length = v.parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    status
}

/// Mean duration of one trace stage across a leg's sampled requests.
#[derive(Serialize)]
struct StageMean {
    stage: String,
    mean_us: f64,
    /// Sampled spans the mean is over.
    count: u64,
}

/// Fetches a path over a one-shot connection, returning the body.
fn get_body(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

/// Per-stage mean durations over the sampled traces in a `/debug/traces`
/// body — the leg's answer to "where did the time go".
fn stage_means(debug_traces_body: &str) -> Vec<StageMean> {
    let v: Value = serde_json::from_str(debug_traces_body).expect("debug traces JSON");
    let field = |v: &Value, key: &str| -> Value {
        match v {
            Value::Map(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("no field {key:?}")),
            other => panic!("expected object, got {other:?}"),
        }
    };
    let uint = |v: &Value| -> u64 {
        match v {
            Value::Int(n) => u64::try_from(*n).expect("non-negative"),
            Value::UInt(n) => *n,
            other => panic!("not an integer: {other:?}"),
        }
    };
    let mut acc: Vec<(String, u64, u64)> = Vec::new();
    let Value::Seq(traces) = field(&v, "traces") else {
        panic!("traces is not an array")
    };
    for trace in &traces {
        let Value::Seq(spans) = field(trace, "spans") else {
            continue;
        };
        for span in &spans {
            let Value::Str(stage) = field(span, "stage") else {
                continue;
            };
            let dur = uint(&field(span, "dur_us"));
            match acc.iter_mut().find(|(s, _, _)| *s == stage) {
                Some((_, sum, n)) => {
                    *sum += dur;
                    *n += 1;
                }
                None => acc.push((stage, dur, 1)),
            }
        }
    }
    let mut means: Vec<StageMean> = acc
        .into_iter()
        .map(|(stage, sum, n)| StageMean {
            stage,
            mean_us: sum as f64 / n as f64,
            count: n,
        })
        .collect();
    means.sort_by(|a, b| b.mean_us.partial_cmp(&a.mean_us).expect("finite means"));
    means
}

#[derive(Serialize)]
struct LoadRun {
    label: String,
    transport: &'static str,
    mode: &'static str,
    cache: &'static str,
    cache_capacity: usize,
    batch_max: usize,
    /// Open-loop arrival rate (0 for closed-loop legs).
    target_qps: f64,
    clients: usize,
    requests: u64,
    /// 503 responses (open-loop overload sheds).
    shed: u64,
    shed_rate: f64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    cache_hit_rate: f64,
    /// Misses answered by coalescing onto an in-flight computation.
    coalesced: u64,
    /// Mean users per scorer micro-batch (0 for the threaded transport).
    mean_batch_size: f64,
    /// Per-stage mean latency over the leg's sampled traces, slowest
    /// first — attributes the cached/uncached gap (queue wait vs. scoring
    /// vs. parse/render overheads).
    stage_means: Vec<StageMean>,
}

/// One fleet leg: closed-loop uncached load through the router, optionally
/// with a mid-leg event (replica kill or fleet-wide rollout).
#[derive(Serialize)]
struct FleetRun {
    label: String,
    /// Replica count behind the router.
    fleet: usize,
    clients: usize,
    requests: u64,
    /// Non-200 responses — the zero-dropped-requests criterion.
    errors: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// "none", "kill" or "rollout".
    event: &'static str,
    /// When the event fired, relative to leg start (0 for "none").
    event_at_ms: f64,
    /// Worst request latency completing within 2 s of the event — the
    /// client-visible failover/rollout blip (0 for "none").
    blip_ms: f64,
    /// Rollout distribute+stage+verify wall clock (traffic flowing).
    rollout_staged_ms: f64,
    /// Rollout pause→commit→resume wall clock — the fleet's downtime.
    rollout_commit_window_ms: f64,
}

/// The `--fleet N` section of the report (ISSUE 9).
#[derive(Serialize)]
struct FleetSection {
    replicas: usize,
    /// True when the box has fewer cores than fleet processes, i.e. every
    /// replica time-slices one saturated core and no parallel speedup is
    /// physically available — `fleet_speedup` then measures the overhead
    /// of splitting (probes, wake churn), not the fleet's scaling.
    core_bound: bool,
    /// Fleet-of-N QPS over fleet-of-1 QPS, same router, same clients.
    fleet_speedup: f64,
    failover_blip_ms: f64,
    failover_errors: u64,
    rollout_commit_window_ms: f64,
    rollout_errors: u64,
    runs: Vec<FleetRun>,
}

#[derive(Serialize)]
struct ServeLoadReport {
    n_users: u32,
    n_items: u32,
    dim: usize,
    k: usize,
    clients: usize,
    zipf_s: f64,
    duration_secs: f64,
    available_cores: usize,
    /// Headline (ISSUE 7): event-loop cached QPS / uncached QPS at
    /// saturating concurrency, where micro-batches fill. Target ≤ 2.0.
    cached_over_uncached: f64,
    /// Uncached event-loop QPS, batch_max 32 vs. 1, same concurrency —
    /// what micro-batching itself buys.
    batch_speedup: f64,
    runs: Vec<LoadRun>,
    fleet: FleetSection,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// One leg of the matrix.
struct Leg {
    label: String,
    transport: Transport,
    cache_capacity: usize,
    cache_label: &'static str,
    batch_max: usize,
    /// `Some(rate)` runs open-loop at `rate` requests/sec; `None` closed.
    open_rate: Option<f64>,
    /// Concurrent keep-alive clients; `None` uses the scale default (the
    /// low-concurrency p99 legs). Micro-batching legs override upward —
    /// cross-request batches only fill when requests actually overlap.
    clients: Option<usize>,
}

/// Everything every leg shares.
struct LoadSpec {
    clients: usize,
    duration: Duration,
    k: usize,
    seed: u64,
}

fn run_leg(bundle_path: &std::path::Path, leg: &Leg, spec: &LoadSpec, zipf: &Zipf) -> LoadRun {
    let LoadSpec {
        duration, k, seed, ..
    } = *spec;
    let clients = leg.clients.unwrap_or(spec.clients);
    let registry = Arc::new(Registry::new());
    let server = start(
        bundle_path.to_path_buf(),
        ServeConfig {
            cache_capacity: leg.cache_capacity,
            workers: match leg.transport {
                // Threaded: a worker per client or responses serialize.
                Transport::Threaded => clients.max(2),
                // Event loop: scorers contend with the loop for cores.
                Transport::EventLoop => 2,
            },
            transport: leg.transport,
            batch_max: leg.batch_max,
            trace_sample: TRACE_SAMPLE,
            ..ServeConfig::default()
        },
        Arc::clone(&registry),
    )
    .expect("server boots");
    let addr: SocketAddr = server.addr();

    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let mut rng = SmallRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37));
        let zipf_cdf = zipf.cdf.clone();
        // Open loop: the aggregate arrival rate is split evenly across
        // clients, each ticking on its own fixed schedule.
        let tick = leg
            .open_rate
            .map(|rate| Duration::from_secs_f64(clients as f64 / rate));
        threads.push(std::thread::spawn(move || {
            let zipf = Zipf { cdf: zipf_cdf };
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut latencies_ms = Vec::new();
            let mut shed = 0u64;
            let mut n = 0u64;
            loop {
                // Intended send time: closed-loop = now; open-loop = the
                // schedule slot, whether or not we are running behind.
                let intended = match tick {
                    None => Instant::now(),
                    Some(t) => {
                        let slot = started + t.mul_f64(n as f64);
                        if let Some(wait) = slot.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        slot
                    }
                };
                if started.elapsed() >= duration {
                    break;
                }
                n += 1;
                let user = zipf.sample(&mut rng);
                let status = request(
                    &mut writer,
                    &mut reader,
                    &format!("/recommend/u{user}?k={k}"),
                );
                if status == 503 {
                    shed += 1;
                } else {
                    latencies_ms.push(intended.elapsed().as_secs_f64() * 1e3);
                }
            }
            (latencies_ms, shed)
        }));
    }
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut shed = 0u64;
    for t in threads {
        let (l, s) = t.join().expect("client thread");
        latencies_ms.extend(l);
        shed += s;
    }
    let wall = started.elapsed();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let hits = registry.counter("serve.cache.hits").get();
    let misses = registry.counter("serve.cache.misses").get();
    let coalesced = registry.counter("serve.cache.coalesced").get();
    let batch_hist = registry.histogram("serve.batch.size", || Histogram::exponential(1.0, 2.0, 6));
    let mean_batch_size = if batch_hist.count() > 0 {
        batch_hist.mean()
    } else {
        0.0
    };
    let stage_means = stage_means(&get_body(addr, "/debug/traces?n=128"));
    server.shutdown();

    let requests = latencies_ms.len() as u64 + shed;
    LoadRun {
        label: leg.label.clone(),
        transport: match leg.transport {
            Transport::Threaded => "threaded",
            Transport::EventLoop => "event",
        },
        mode: if leg.open_rate.is_some() {
            "open"
        } else {
            "closed"
        },
        cache: leg.cache_label,
        cache_capacity: leg.cache_capacity,
        batch_max: leg.batch_max,
        target_qps: leg.open_rate.unwrap_or(0.0),
        clients,
        requests,
        shed,
        shed_rate: shed as f64 / (requests as f64).max(1.0),
        qps: (requests - shed) as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 0.50),
        p95_ms: percentile(&latencies_ms, 0.95),
        p99_ms: percentile(&latencies_ms, 0.99),
        cache_hit_rate: hits as f64 / (hits + misses + coalesced).max(1) as f64,
        coalesced,
        mean_batch_size,
        stage_means,
    }
}

/// What happens mid-leg in a fleet run.
enum FleetEvent {
    None,
    /// Shut replica 0 down abruptly; the router must mask it.
    Kill,
    /// Drive a fleet-wide two-phase rollout of the candidate bundle.
    Rollout,
}

/// A booted fleet: N in-process replicas behind a router.
struct Fleet {
    replicas: Vec<ServerHandle>,
    addrs: Vec<SocketAddr>,
    bundles: Vec<PathBuf>,
    router: RouterHandle,
}

/// Boots `n` uncached event-loop replicas on private copies of `master`
/// and a router in front of them. Replicas behind a router must run the
/// event loop: the router's pooled keep-alive upstreams would pin every
/// thread-per-connection worker and starve the health/rollout probes.
fn start_fleet(dir: &Path, master: &Path, n: usize, clients: usize) -> Fleet {
    let mut replicas = Vec::new();
    let mut addrs = Vec::new();
    let mut bundles = Vec::new();
    for i in 0..n {
        let bundle = dir.join(format!("fleet{n}-replica-{i}.json"));
        std::fs::copy(master, &bundle).expect("replica bundle copy");
        let handle = start(
            bundle.clone(),
            ServeConfig {
                cache_capacity: 0,
                workers: 1,
                transport: Transport::EventLoop,
                // Micro-batching confounds the replica-count comparison on
                // a shared-core testbed: concentrating every client on one
                // replica fills batches that a sharded fleet cannot, which
                // is amortisation the single replica would not get with
                // replicas on separate machines. batch 1 isolates the
                // routing/sharding dimension itself.
                batch_max: 1,
                ..ServeConfig::default()
            },
            Arc::new(Registry::new()),
        )
        .expect("replica boots");
        addrs.push(handle.addr());
        replicas.push(handle);
        bundles.push(bundle);
    }
    let router = clapf_fleet::start_router(
        RouterConfig {
            replicas: addrs.clone(),
            // Router workers hold a client connection each for its
            // keep-alive lifetime, so the pool must cover every client.
            workers: clients + 2,
            health_interval: Duration::from_millis(250),
            ..RouterConfig::default()
        },
        Arc::new(Registry::new()),
    )
    .expect("router boots");
    Fleet {
        replicas,
        addrs,
        bundles,
        router,
    }
}

/// Where the fleet legs find their fixtures on disk.
struct FleetPaths {
    /// Scratch directory for per-replica bundle copies.
    dir: PathBuf,
    /// The bundle every replica starts on.
    master: PathBuf,
    /// The rollout candidate (different fingerprint).
    candidate: PathBuf,
}

/// Runs one closed-loop fleet leg: `clients` keep-alive clients hammer the
/// router for `spec.duration`; at 40% of the leg the event (if any) fires
/// on the main thread while load keeps flowing.
fn run_fleet_leg(
    paths: &FleetPaths,
    n: usize,
    clients: usize,
    spec: &LoadSpec,
    zipf: &Zipf,
    event: FleetEvent,
) -> FleetRun {
    let LoadSpec {
        duration, k, seed, ..
    } = *spec;
    let mut fleet = start_fleet(&paths.dir, &paths.master, n, clients);
    let addr = fleet.router.addr();

    // Clients run for at least `duration` but never stop while the mid-leg
    // event is still in progress — a rollout staged under full load can
    // outlast a short leg, and its commit window must land under load or
    // the zero-dropped-requests claim is vacuous.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let mut rng = SmallRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0xF1EE7));
        let zipf_cdf = zipf.cdf.clone();
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let zipf = Zipf { cdf: zipf_cdf };
            let stream = TcpStream::connect(addr).expect("connect router");
            stream.set_nodelay(true).expect("nodelay");
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            // (completed_at_secs since leg start, latency_ms, status)
            let mut records: Vec<(f64, f64, u16)> = Vec::new();
            while started.elapsed() < duration
                || !stop.load(std::sync::atomic::Ordering::Relaxed)
            {
                let user = zipf.sample(&mut rng);
                let sent = Instant::now();
                let status = request(
                    &mut writer,
                    &mut reader,
                    &format!("/recommend/u{user}?k={k}"),
                );
                records.push((
                    started.elapsed().as_secs_f64(),
                    sent.elapsed().as_secs_f64() * 1e3,
                    status,
                ));
            }
            records
        }));
    }

    let event_at = duration.mul_f64(0.4);
    let (event_name, event_at_ms, staged_ms, commit_ms) = match &event {
        FleetEvent::None => ("none", 0.0, 0.0, 0.0),
        kill_or_rollout => {
            if let Some(wait) = (started + event_at).checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            match kill_or_rollout {
                FleetEvent::None => unreachable!(),
                FleetEvent::Kill => {
                    fleet.replicas.remove(0).shutdown();
                    ("kill", event_at.as_secs_f64() * 1e3, 0.0, 0.0)
                }
                FleetEvent::Rollout => {
                    let fspec = FleetSpec {
                        router: Some(addr),
                        replicas: fleet
                            .addrs
                            .iter()
                            .zip(&fleet.bundles)
                            .map(|(&addr, bundle)| ReplicaSpec {
                                addr,
                                bundle: bundle.clone(),
                            })
                            .collect(),
                    };
                    let report =
                        rollout(&fspec, &paths.candidate).expect("fleet rollout under load");
                    // Let resumed traffic flow a moment so the post-commit
                    // regime shows up in the records too.
                    std::thread::sleep(Duration::from_millis(200));
                    (
                        "rollout",
                        event_at.as_secs_f64() * 1e3,
                        report.staged.as_secs_f64() * 1e3,
                        report.commit_window.as_secs_f64() * 1e3,
                    )
                }
            }
        }
    };
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut records: Vec<(f64, f64, u16)> = Vec::new();
    for t in threads {
        records.extend(t.join().expect("fleet client thread"));
    }
    let wall = started.elapsed();
    fleet.router.shutdown();
    for r in fleet.replicas {
        r.shutdown();
    }

    let errors = records.iter().filter(|(_, _, s)| *s != 200).count() as u64;
    let mut oks_ms: Vec<f64> = records
        .iter()
        .filter(|(_, _, s)| *s == 200)
        .map(|(_, l, _)| *l)
        .collect();
    oks_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let blip_ms = {
        // Kill recovers within the retry path, so a 2 s window after the
        // event suffices; a rollout's pause lands `staged` later, so its
        // window runs to the end of the leg.
        let (from, to) = match event {
            FleetEvent::None => (f64::INFINITY, f64::INFINITY),
            FleetEvent::Kill => (event_at.as_secs_f64(), event_at.as_secs_f64() + 2.0),
            FleetEvent::Rollout => (event_at.as_secs_f64(), f64::INFINITY),
        };
        records
            .iter()
            .filter(|(done, _, _)| (from..to).contains(done))
            .map(|(_, l, _)| *l)
            .fold(0.0, f64::max)
    };
    FleetRun {
        label: format!("fleet={n} {event_name} x{clients}"),
        fleet: n,
        clients,
        requests: records.len() as u64,
        errors,
        qps: oks_ms.len() as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&oks_ms, 0.50),
        p99_ms: percentile(&oks_ms, 0.99),
        event: event_name,
        event_at_ms,
        blip_ms,
        rollout_staged_ms: staged_ms,
        rollout_commit_window_ms: commit_ms,
    }
}

/// The `--chaos` leg: the deterministic fault-schedule soak from
/// [`bench::chaos`], sized by the scale flag (`--fast` runs the smoke
/// shape, `--medium`/`--paper` the full ≥30s soak). Unlike the in-process
/// legs above this boots real `clapf serve` child processes, so it needs
/// the `clapf` binary (`--clapf PATH`, `$CLAPF_BIN`, or a sibling of this
/// binary). Exits non-zero if a resilience invariant fails.
fn run_chaos_leg(cli: &Cli, clapf_bin: Option<PathBuf>) {
    use bench::chaos::{locate_clapf, run_chaos, ChaosOptions};
    let exe = locate_clapf(clapf_bin).expect("chaos leg");
    let opts = match cli.scale_name {
        "fast" => ChaosOptions::smoke(exe, cli.scale.seed),
        _ => ChaosOptions::soak(exe, cli.scale.seed),
    };
    let chaos = run_chaos(&opts).expect("chaos leg");
    eprintln!(
        "chaos [{}]: {} req in {:.1}s — {} typed 503s, {} untyped, {} mixed-generation; \
         hedge win rate {:.0}%, {} lease expirations, {} readmissions, pass={}",
        chaos.label,
        chaos.requests,
        chaos.duration_secs,
        chaos.errors_typed,
        chaos.errors_untyped,
        chaos.invariants.mixed_generation_responses,
        chaos.hedge_win_rate * 100.0,
        chaos.lease_expirations,
        chaos.readmissions,
        chaos.pass,
    );
    for ev in &chaos.events {
        eprintln!(
            "{:>20}: {} req, error rate {:.3} (bound {:.2}), recovered in {} ms",
            ev.class, ev.requests, ev.error_rate, ev.error_bound, ev.time_to_recover_ms,
        );
    }
    std::fs::create_dir_all(&cli.out_dir).expect("create output directory");
    let path = cli.out_dir.join("BENCH_fleet_chaos.json");
    report::write_json(&path, &chaos).expect("write chaos report");
    eprintln!("chaos report written to {}", path.display());
    if !chaos.pass {
        for f in &chaos.failures {
            eprintln!("chaos: FAIL {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    // `--fleet N` sizes the fleet section (replica count for the N-replica
    // legs); `--chaos` replaces the whole matrix with the chaos leg
    // (ISSUE 10) — replica child processes under a seeded fault schedule,
    // report in `BENCH_fleet_chaos.json`; `--clapf PATH` points the chaos
    // leg at the binary to spawn. Every other flag is the shared bench CLI.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut fleet_n = 3usize;
    if let Some(i) = raw.iter().position(|a| a == "--fleet") {
        let v = raw
            .get(i + 1)
            .expect("--fleet requires a replica count")
            .clone();
        fleet_n = v.parse().expect("--fleet must be an integer");
        raw.drain(i..=i + 1);
    }
    let mut chaos_leg = false;
    if let Some(i) = raw.iter().position(|a| a == "--chaos") {
        chaos_leg = true;
        raw.remove(i);
    }
    let mut clapf_bin: Option<PathBuf> = None;
    if let Some(i) = raw.iter().position(|a| a == "--clapf") {
        clapf_bin = Some(PathBuf::from(
            raw.get(i + 1).expect("--clapf requires a path").clone(),
        ));
        raw.drain(i..=i + 1);
    }
    let fleet_n = fleet_n.max(1);
    let cli = Cli::from_args(&raw);
    if chaos_leg {
        run_chaos_leg(&cli, clapf_bin);
        return;
    }
    // Scale knobs: users/items size the scoring cost per uncached request,
    // duration bounds the wall clock.
    let (n_users, n_items, secs, clients) = match cli.scale_name {
        "fast" => (2_000u32, 5_000u32, 2.0f64, 4usize),
        "medium" => (10_000, 20_000, 8.0, 6),
        _ => (20_000, 50_000, 20.0, 8),
    };
    let (dim, k, zipf_s) = (32usize, 10usize, 1.1f64);

    // Synthetic ratings CSV → IdMap + interactions, exactly the path a real
    // `clapf fit --save` bundle takes. 8 positives per user.
    let mut csv = String::new();
    for u in 0..n_users {
        for t in 0..8u32 {
            let i = (u * 13 + t * 97) % n_items;
            csv.push_str(&format!("u{u},i{i},5\n"));
        }
    }
    let loaded = load_ratings_reader(std::io::Cursor::new(csv.as_bytes()), Separator::Comma, 3.0)
        .expect("synthetic ratings load");
    let mut rng = SmallRng::seed_from_u64(cli.scale.seed);
    let model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        dim,
        Init::default(),
        &mut rng,
    );
    let bundle = ModelBundle::new(
        format!("serve-load fixture d={dim}"),
        model,
        loaded.ids,
        &loaded.interactions,
    );
    let dir = std::env::temp_dir().join(format!("clapf-serve-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bundle_path = dir.join("bundle.json");
    bundle.save(&bundle_path).expect("save bundle");

    // A second bundle with a different fingerprint — the rollout candidate
    // for the fleet leg. Same data, freshly initialised factors.
    let loaded_b = load_ratings_reader(std::io::Cursor::new(csv.as_bytes()), Separator::Comma, 3.0)
        .expect("synthetic ratings load");
    let mut rng_b = SmallRng::seed_from_u64(cli.scale.seed ^ 0xB00B5);
    let model_b = MfModel::new(
        loaded_b.interactions.n_users(),
        loaded_b.interactions.n_items(),
        dim,
        Init::default(),
        &mut rng_b,
    );
    let bundle_b = ModelBundle::new(
        format!("serve-load fixture B d={dim}"),
        model_b,
        loaded_b.ids,
        &loaded_b.interactions,
    );
    let candidate_path = dir.join("bundle-b.json");
    bundle_b.save(&candidate_path).expect("save candidate bundle");

    let zipf = Zipf::new(n_users as usize, zipf_s);
    let duration = Duration::from_secs_f64(secs);
    let spec = LoadSpec {
        clients,
        duration,
        k,
        seed: cli.scale.seed,
    };
    let cache_cap = 2 * n_users as usize;

    // Closed-loop matrix: the old thread-per-worker numbers stay in the
    // report next to the event-loop ones, and batch 32 vs. 1 isolates what
    // micro-batching itself buys on the uncached path.
    let mut legs = vec![
        Leg {
            label: "threaded cache=on".into(),
            transport: Transport::Threaded,
            cache_capacity: cache_cap,
            cache_label: "on",
            batch_max: 32,
            open_rate: None,
            clients: None,
        },
        Leg {
            label: "threaded cache=off".into(),
            transport: Transport::Threaded,
            cache_capacity: 0,
            cache_label: "off",
            batch_max: 32,
            open_rate: None,
            clients: None,
        },
        Leg {
            label: "event batch=32 cache=on".into(),
            transport: Transport::EventLoop,
            cache_capacity: cache_cap,
            cache_label: "on",
            batch_max: 32,
            open_rate: None,
            clients: None,
        },
        Leg {
            label: "event batch=32 cache=off".into(),
            transport: Transport::EventLoop,
            cache_capacity: 0,
            cache_label: "off",
            batch_max: 32,
            open_rate: None,
            clients: None,
        },
        Leg {
            label: "event batch=1 cache=off".into(),
            transport: Transport::EventLoop,
            cache_capacity: 0,
            cache_label: "off",
            batch_max: 1,
            open_rate: None,
            clients: None,
        },
    ];
    // Saturating-concurrency legs: cross-request micro-batches only fill
    // when many requests overlap, so the headline cached-vs-uncached ratio
    // is measured here, where the batcher actually amortizes the item-table
    // sweep. The low-concurrency legs above carry the p99 criterion.
    let hi_clients = clients * 6;
    for (label, cap, cache_label, batch_max) in [
        (format!("event batch=32 cache=on x{hi_clients}"), cache_cap, "on", 32),
        (format!("event batch=32 cache=off x{hi_clients}"), 0, "off", 32),
        (format!("event batch=1 cache=off x{hi_clients}"), 0, "off", 1),
    ] {
        legs.push(Leg {
            label,
            transport: Transport::EventLoop,
            cache_capacity: cap,
            cache_label,
            batch_max,
            open_rate: None,
            clients: Some(hi_clients),
        });
    }

    let mut runs = Vec::new();
    let mut event_cached_qps = 0.0f64;
    for leg in &legs {
        let run = run_leg(&bundle_path, leg, &spec, &zipf);
        eprintln!(
            "{:>26} [{}]: {} req ({} shed), {:.0} qps, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, \
             hit rate {:.1}%, mean batch {:.1}",
            run.label,
            run.mode,
            run.requests,
            run.shed,
            run.qps,
            run.p50_ms,
            run.p95_ms,
            run.p99_ms,
            run.cache_hit_rate * 100.0,
            run.mean_batch_size,
        );
        let top: Vec<String> = run
            .stage_means
            .iter()
            .take(4)
            .map(|s| format!("{} {:.0}µs", s.stage, s.mean_us))
            .collect();
        eprintln!("{:>26}  slowest stages: {}", "", top.join(", "));
        if run.label == "event batch=32 cache=on" {
            event_cached_qps = run.qps;
        }
        runs.push(run);
    }

    // Open-loop legs: a fixed arrival rate at ~60% of the measured cached
    // capacity (healthy) and ~150% (overload — shed rate becomes the
    // signal). Derived from the closed-loop measurement so the legs stay
    // meaningful across machines and scales.
    let healthy = (event_cached_qps * 0.6).max(50.0);
    let overload = (event_cached_qps * 1.5).max(200.0);
    legs.clear();
    for (tag, rate, cap, cache_label) in [
        ("open 60pct cache=on", healthy, cache_cap, "on"),
        ("open 150pct cache=off", overload, 0usize, "off"),
    ] {
        legs.push(Leg {
            label: format!("event batch=32 {tag}"),
            transport: Transport::EventLoop,
            cache_capacity: cap,
            cache_label,
            batch_max: 32,
            open_rate: Some(rate),
            clients: None,
        });
    }
    for leg in &legs {
        let run = run_leg(&bundle_path, leg, &spec, &zipf);
        eprintln!(
            "{:>38} [{}] target {:.0} qps: {} req ({} shed, {:.1}%), {:.0} qps, p50 {:.3} ms, \
             p99 {:.3} ms",
            run.label,
            run.mode,
            run.target_qps,
            run.requests,
            run.shed,
            run.shed_rate * 100.0,
            run.qps,
            run.p50_ms,
            run.p99_ms,
        );
        runs.push(run);
    }

    let qps_of = |label: &str| {
        runs.iter()
            .find(|r| r.label == label)
            .map(|r| r.qps)
            .unwrap_or(f64::NAN)
    };
    let cached_over_uncached = qps_of(&format!("event batch=32 cache=on x{hi_clients}"))
        / qps_of(&format!("event batch=32 cache=off x{hi_clients}"));
    let batch_speedup = qps_of(&format!("event batch=32 cache=off x{hi_clients}"))
        / qps_of(&format!("event batch=1 cache=off x{hi_clients}"));
    eprintln!(
        "headline @ {hi_clients} clients: cached/uncached = {cached_over_uncached:.2}x \
         (target <= 2.0), batch=32 vs batch=1 speedup = {batch_speedup:.2}x"
    );

    // Fleet section (ISSUE 9): uncached closed-loop load through the
    // router, fleet of 1 vs. fleet of N, then a replica kill and a
    // fleet-wide rollout under the same load. Events need at least two
    // replicas — a fleet of one has nothing to fail over to.
    let mut fleet_runs = Vec::new();
    let mut fleet_legs: Vec<(usize, FleetEvent)> = vec![(1, FleetEvent::None)];
    if fleet_n >= 2 {
        fleet_legs.push((fleet_n, FleetEvent::None));
        fleet_legs.push((fleet_n, FleetEvent::Kill));
        fleet_legs.push((fleet_n, FleetEvent::Rollout));
    }
    let fleet_paths = FleetPaths {
        dir: dir.clone(),
        master: bundle_path.clone(),
        candidate: candidate_path.clone(),
    };
    for (n, event) in fleet_legs {
        let run = run_fleet_leg(&fleet_paths, n, hi_clients, &spec, &zipf, event);
        eprintln!(
            "{:>26}: {} req ({} errors), {:.0} qps, p50 {:.3} ms, p99 {:.3} ms, blip {:.1} ms, \
             rollout staged {:.0} ms / commit window {:.1} ms",
            run.label,
            run.requests,
            run.errors,
            run.qps,
            run.p50_ms,
            run.p99_ms,
            run.blip_ms,
            run.rollout_staged_ms,
            run.rollout_commit_window_ms,
        );
        fleet_runs.push(run);
    }
    let fleet_run = |event: &str, n: usize| fleet_runs.iter().find(|r| r.event == event && r.fleet == n);
    let fleet_speedup = fleet_run("none", fleet_n).map(|r| r.qps).unwrap_or(f64::NAN)
        / fleet_run("none", 1).map(|r| r.qps).unwrap_or(f64::NAN);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fleet = FleetSection {
        replicas: fleet_n,
        // Router + N replicas: with fewer cores than processes the legs
        // compare time-slices of one core, not parallel replicas.
        core_bound: cores < fleet_n + 1,
        fleet_speedup,
        failover_blip_ms: fleet_run("kill", fleet_n).map(|r| r.blip_ms).unwrap_or(0.0),
        failover_errors: fleet_run("kill", fleet_n).map(|r| r.errors).unwrap_or(0),
        rollout_commit_window_ms: fleet_run("rollout", fleet_n)
            .map(|r| r.rollout_commit_window_ms)
            .unwrap_or(0.0),
        rollout_errors: fleet_run("rollout", fleet_n).map(|r| r.errors).unwrap_or(0),
        runs: fleet_runs,
    };
    eprintln!(
        "fleet headline: {}-replica over 1-replica qps = {:.2}x{}, failover blip {:.1} ms \
         ({} errors), rollout commit window {:.1} ms ({} errors)",
        fleet.replicas,
        fleet.fleet_speedup,
        if fleet.core_bound {
            " (core-bound: replicas time-slice one core)"
        } else {
            ""
        },
        fleet.failover_blip_ms,
        fleet.failover_errors,
        fleet.rollout_commit_window_ms,
        fleet.rollout_errors,
    );

    let out = ServeLoadReport {
        n_users,
        n_items,
        dim,
        k,
        clients,
        zipf_s,
        duration_secs: secs,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        cached_over_uncached,
        batch_speedup,
        runs,
        fleet,
    };
    let path = cli.out_dir.join("BENCH_serve.json");
    report::write_json(&path, &out).expect("write serve load results");
    eprintln!("wrote {}", path.display());
    std::fs::remove_dir_all(&dir).ok();
}
