//! Closed-loop load generator for the `clapf-serve` HTTP server.
//!
//! Boots a real server (in-process, ephemeral port) on a synthetic bundle
//! and hammers `GET /recommend/{user}?k=10` from keep-alive client threads
//! whose user ids follow a Zipf distribution — the skew that makes a top-k
//! cache pay. Two runs, identical except for the cache (on, then off),
//! land in `results/BENCH_serve.json` alongside the other BENCH artifacts:
//! QPS, p50/p95/p99 latency, and the measured cache hit rate.

use bench::Cli;
use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_eval::report;
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig};
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Zipf(s) sampler over `0..n` via a precomputed CDF and binary search.
/// Hand-rolled: the vendored `rand` has no distribution zoo.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

/// One keep-alive request; returns latency. Panics on any protocol error —
/// a load generator that silently drops errors measures nothing.
fn request(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
) -> Duration {
    let started = Instant::now();
    write!(writer, "GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").expect("send request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.contains("200"), "unexpected response: {line:?}");
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(|v| v.trim().to_string())
        {
            content_length = v.parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    started.elapsed()
}

#[derive(Serialize)]
struct LoadRun {
    cache: &'static str,
    cache_capacity: usize,
    requests: u64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ServeLoadReport {
    n_users: u32,
    n_items: u32,
    dim: usize,
    k: usize,
    clients: usize,
    zipf_s: f64,
    duration_secs: f64,
    available_cores: usize,
    runs: Vec<LoadRun>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Everything one load run needs besides the cache setting.
struct LoadSpec {
    clients: usize,
    duration: Duration,
    k: usize,
    seed: u64,
}

fn run_load(
    bundle_path: &std::path::Path,
    cache_capacity: usize,
    cache_label: &'static str,
    spec: &LoadSpec,
    zipf: &Zipf,
) -> LoadRun {
    let LoadSpec { clients, duration, k, seed } = *spec;
    let registry = Arc::new(Registry::new());
    let server = start(
        bundle_path.to_path_buf(),
        ServeConfig {
            cache_capacity,
            workers: clients.max(2),
            ..ServeConfig::default()
        },
        Arc::clone(&registry),
    )
    .expect("server boots");
    let addr: SocketAddr = server.addr();

    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let mut rng = SmallRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37));
        let zipf_cdf = zipf.cdf.clone();
        threads.push(std::thread::spawn(move || {
            let zipf = Zipf { cdf: zipf_cdf };
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut latencies_ms = Vec::new();
            while started.elapsed() < duration {
                let user = zipf.sample(&mut rng);
                let wall = request(
                    &mut writer,
                    &mut reader,
                    &format!("/recommend/u{user}?k={k}"),
                );
                latencies_ms.push(wall.as_secs_f64() * 1e3);
            }
            latencies_ms
        }));
    }
    let mut latencies_ms: Vec<f64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    let wall = started.elapsed();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let hits = registry.counter("serve.cache.hits").get();
    let misses = registry.counter("serve.cache.misses").get();
    server.shutdown();

    let requests = latencies_ms.len() as u64;
    LoadRun {
        cache: cache_label,
        cache_capacity,
        requests,
        qps: requests as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 0.50),
        p95_ms: percentile(&latencies_ms, 0.95),
        p99_ms: percentile(&latencies_ms, 0.99),
        cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
    }
}

fn main() {
    let cli = Cli::parse();
    // Scale knobs: users/items size the scoring cost per uncached request,
    // duration bounds the wall clock.
    let (n_users, n_items, secs, clients) = match cli.scale_name {
        "fast" => (2_000u32, 5_000u32, 2.0f64, 4usize),
        "medium" => (10_000, 20_000, 8.0, 6),
        _ => (20_000, 50_000, 20.0, 8),
    };
    let (dim, k, zipf_s) = (32usize, 10usize, 1.1f64);

    // Synthetic ratings CSV → IdMap + interactions, exactly the path a real
    // `clapf fit --save` bundle takes. 8 positives per user.
    let mut csv = String::new();
    for u in 0..n_users {
        for t in 0..8u32 {
            let i = (u * 13 + t * 97) % n_items;
            csv.push_str(&format!("u{u},i{i},5\n"));
        }
    }
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0)
        .expect("synthetic ratings load");
    let mut rng = SmallRng::seed_from_u64(cli.scale.seed);
    let model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        dim,
        Init::default(),
        &mut rng,
    );
    let bundle = ModelBundle::new(
        format!("serve-load fixture d={dim}"),
        model,
        loaded.ids,
        &loaded.interactions,
    );
    let dir = std::env::temp_dir().join(format!("clapf-serve-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bundle_path = dir.join("bundle.json");
    bundle.save(&bundle_path).expect("save bundle");

    let zipf = Zipf::new(n_users as usize, zipf_s);
    let duration = Duration::from_secs_f64(secs);
    let spec = LoadSpec {
        clients,
        duration,
        k,
        seed: cli.scale.seed,
    };
    let mut runs = Vec::new();
    for (capacity, label) in [(2 * n_users as usize, "on"), (0usize, "off")] {
        let run = run_load(&bundle_path, capacity, label, &spec, &zipf);
        eprintln!(
            "cache {}: {} req, {:.0} qps, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, hit rate {:.1}%",
            run.cache,
            run.requests,
            run.qps,
            run.p50_ms,
            run.p95_ms,
            run.p99_ms,
            run.cache_hit_rate * 100.0
        );
        runs.push(run);
    }

    let out = ServeLoadReport {
        n_users,
        n_items,
        dim,
        k,
        clients,
        zipf_s,
        duration_secs: secs,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        runs,
    };
    let path = cli.out_dir.join("BENCH_serve.json");
    report::write_json(&path, &out).expect("write serve load results");
    eprintln!("wrote {}", path.display());
    std::fs::remove_dir_all(&dir).ok();
}
