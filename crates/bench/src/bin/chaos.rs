//! Deterministic chaos soak for the fleet resilience layer (ISSUE 10).
//!
//! Boots a router + N `clapf serve` child processes, puts them under
//! closed-loop load, replays a seeded schedule of fault events (kill -9,
//! hang, slow-read, torn bundle commit, heartbeat blackhole), and asserts
//! the resilience invariants — see [`bench::chaos`] for the full list.
//! The per-event-class error rates, times-to-recover and the hedge win
//! rate land in `results/BENCH_fleet_chaos.json`; the process exits
//! non-zero if any invariant fails.
//!
//! Flags beyond the shared bench CLI:
//!
//! * `--smoke` — the tier-1 shape: 2 replicas, short windows, ~12s.
//!   Without it the run is the acceptance soak: 3 replicas, ≥30s.
//! * `--clapf PATH` — the `clapf` binary to spawn replicas from
//!   (defaults to a sibling of this binary, or `$CLAPF_BIN`).

use bench::chaos::{locate_clapf, run_chaos, ChaosOptions};
use bench::Cli;
use clapf_eval::report;
use std::path::PathBuf;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    if let Some(i) = raw.iter().position(|a| a == "--smoke") {
        smoke = true;
        raw.remove(i);
    }
    let mut clapf: Option<PathBuf> = None;
    if let Some(i) = raw.iter().position(|a| a == "--clapf") {
        clapf = Some(PathBuf::from(
            raw.get(i + 1).expect("--clapf requires a path").clone(),
        ));
        raw.drain(i..=i + 1);
    }
    let cli = Cli::from_args(&raw);
    let exe = match locate_clapf(clapf) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };

    let opts = if smoke {
        ChaosOptions::smoke(exe, cli.scale.seed)
    } else {
        ChaosOptions::soak(exe, cli.scale.seed)
    };
    eprintln!(
        "chaos: {} run, seed {}, {} replicas from {}",
        opts.label,
        opts.seed,
        opts.replicas,
        opts.exe.display()
    );
    let chaos = match run_chaos(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };

    for ev in &chaos.events {
        eprintln!(
            "{:>20}: replica-{} at t+{:.1}s, {} req, error rate {:.3} (bound {:.2}), \
             recovered in {} ms{}",
            ev.class,
            ev.replica,
            ev.at_secs,
            ev.requests,
            ev.error_rate,
            ev.error_bound,
            ev.time_to_recover_ms,
            match ev.converged_within_lease {
                Some(true) => ", converged within lease",
                Some(false) => ", CONVERGENCE LATE",
                None => "",
            },
        );
    }
    eprintln!(
        "chaos: {} requests in {:.1}s — {} typed 503s, {} untyped, {} degraded, {} mixed; \
         hedges {}/{} won ({:.0}%), breaker {} trips / {} closes, {} lease expirations, \
         {} readmissions",
        chaos.requests,
        chaos.duration_secs,
        chaos.errors_typed,
        chaos.errors_untyped,
        chaos.degraded_responses,
        chaos.invariants.mixed_generation_responses,
        chaos.hedge_wins,
        chaos.hedge_fired,
        chaos.hedge_win_rate * 100.0,
        chaos.breaker_trips,
        chaos.breaker_closes,
        chaos.lease_expirations,
        chaos.readmissions,
    );

    std::fs::create_dir_all(&cli.out_dir).expect("create output directory");
    let path = cli.out_dir.join("BENCH_fleet_chaos.json");
    report::write_json(&path, &chaos).expect("write report");
    eprintln!("chaos: report written to {}", path.display());

    if !chaos.pass {
        for f in &chaos.failures {
            eprintln!("chaos: FAIL {f}");
        }
        std::process::exit(1);
    }
    eprintln!("chaos: all invariants held");
}
