//! Million-scale end-to-end benchmark: streaming world builds, the
//! CSR-file/mmap data path, training throughput and the SIMD scoring
//! speedup, at 1M and 10M interactions. Emits `results/BENCH_scale.json`.
//!
//! Peak RSS is read from `/proc/self/status` `VmHWM`, which is monotone
//! over a process lifetime — so every measured stage runs in its own
//! child process (the binary re-execs itself with `--leg …`). Each child
//! reports its startup baseline alongside its peak so the parent can
//! compare *deltas*, not absolute footprints.
//!
//! Gates (asserted here so `scripts/tier1.sh --smoke` catches regressions):
//! * training steps/sec is finite and nonzero on a file-backed world;
//! * opening a world via mmap costs a small fraction of building it on the
//!   heap (< 25% at the 1M/10M scale, < 60% for the tiny smoke world
//!   where page-granular sampling dominates);
//! * at full scale the SIMD bulk scorer is ≥ 2× the scalar one.
//!
//! Usage: `scale [--smoke] [--out DIR]`.

use clapf_core::{Clapf, ClapfConfig, ParallelConfig};
use clapf_data::stream::{StreamConfig, StreamWorld};
use clapf_data::{Interactions, UserId};
use clapf_eval::report;
use clapf_mf::{Init, MfModel};
use clapf_sampling::UniformSampler;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

const SEED: u64 = 20260807;

/// One benchmark world, keyed by its tag.
fn world_config(tag: &str) -> StreamConfig {
    match tag {
        "smoke" => StreamConfig::scale(50_000, 20_000, 2.0, SEED),
        "1M" => StreamConfig::scale(250_000, 100_000, 4.0, SEED),
        "10M" => StreamConfig::scale(2_500_000, 1_000_000, 4.0, SEED),
        other => panic!("unknown world tag {other:?}"),
    }
}

/// `VmHWM` (peak resident set) of this process, in bytes; 0 where
/// `/proc/self/status` is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// What one child leg reports back to the parent over stdout. One flat
/// struct for all legs; fields a leg does not measure stay zero.
#[derive(Serialize, Deserialize, Default, Clone, Debug)]
struct LegOut {
    /// Peak RSS at child startup, before any benchmark allocation.
    baseline_rss_bytes: u64,
    /// Peak RSS after the measured work.
    peak_rss_bytes: u64,
    elapsed_secs: f64,
    n_pairs: u64,
    file_bytes: u64,
    mapped: bool,
    access_samples: u64,
    access_checksum: u64,
    train_dim: u64,
    train_steps: u64,
    steps_per_sec: f64,
    one_thread_steps_per_sec: f64,
    per_thread_efficiency: f64,
    eval_dim: u64,
    eval_batch_users: u64,
    wide_users_per_sec: f64,
    scalar_users_per_sec: f64,
    simd_speedup: f64,
    arch_dispatch: bool,
}

fn emit(mut leg: LegOut, baseline: u64, elapsed_secs: f64) {
    leg.baseline_rss_bytes = baseline;
    leg.peak_rss_bytes = peak_rss_bytes();
    leg.elapsed_secs = elapsed_secs;
    println!("{}", serde_json::to_string(&leg).expect("serialize leg output"));
}

/// RSS growth over the child's startup baseline, floored at one page so
/// ratios stay finite.
fn rss_delta(leg: &LegOut) -> u64 {
    leg.peak_rss_bytes.saturating_sub(leg.baseline_rss_bytes).max(4096)
}

// ---------------------------------------------------------------- legs --

/// Generate the world and build the full heap CSR — the memory ceiling the
/// mmap path is measured against.
fn leg_build(tag: &str) {
    let baseline = peak_rss_bytes();
    let t = Instant::now();
    let world = StreamWorld::new(world_config(tag)).expect("valid world config");
    let data = world.build();
    let secs = t.elapsed().as_secs_f64();
    black_box(data.n_pairs());
    emit(
        LegOut {
            n_pairs: data.n_pairs() as u64,
            ..LegOut::default()
        },
        baseline,
        secs,
    );
}

/// Stream the world straight to a CSR file (no in-memory matrix).
fn leg_write(tag: &str, file: &Path) {
    let baseline = peak_rss_bytes();
    let t = Instant::now();
    let world = StreamWorld::new(world_config(tag)).expect("valid world config");
    let n_pairs = world.write_csr(file).expect("write CSR file");
    let secs = t.elapsed().as_secs_f64();
    emit(
        LegOut {
            n_pairs,
            file_bytes: std::fs::metadata(file).map(|m| m.len()).unwrap_or(0),
            ..LegOut::default()
        },
        baseline,
        secs,
    );
}

/// Reopen the written world memory-mapped and touch a bounded sample of it
/// — the leg whose RSS delta must stay far below the heap build's.
fn leg_open(file: &Path) {
    let baseline = peak_rss_bytes();
    let t = Instant::now();
    let data = Interactions::open_csr(file).expect("open CSR file");
    let open_secs = t.elapsed().as_secs_f64();

    // Bounded random access: enough to prove the view works, few enough
    // that only a sliver of the file's pages fault in. Linux fault-around
    // maps up to 64 KiB of already-cached pages around every fault, so each
    // probe costs ~128 KiB of residency (a user_ptr leaf plus a user_items
    // window); the count stays small and fixed so the windows can never
    // tile the arrays end to end.
    let n_pairs = data.n_pairs();
    let samples = 64.min(n_pairs);
    let mut checksum = 0u64;
    for k in 0..samples {
        let (u, i) = data.pair_at(k * (n_pairs / samples));
        checksum = checksum.wrapping_add(u.0 as u64).wrapping_add(i.0 as u64);
        checksum = checksum.wrapping_add(data.degree_of_user(u) as u64);
        checksum = checksum.wrapping_add(u64::from(data.contains(u, i)));
    }
    black_box(checksum);
    emit(
        LegOut {
            n_pairs: n_pairs as u64,
            mapped: data.is_mapped(),
            access_samples: samples as u64,
            access_checksum: checksum,
            ..LegOut::default()
        },
        baseline,
        open_secs,
    );
}

/// Train directly on the file-backed world: SGD steps/sec at d = 16,
/// serial and one-worker parallel (per-thread efficiency).
fn leg_train(file: &Path) {
    let baseline = peak_rss_bytes();
    let data = Interactions::open_csr(file).expect("open CSR file");
    let steps = data.n_pairs().min(2_000_000);
    let config = ClapfConfig {
        dim: 16,
        iterations: steps,
        ..ClapfConfig::map(0.4)
    };

    let trainer = Clapf::new(config);
    let mut rng = SmallRng::seed_from_u64(SEED ^ 1);
    let t = Instant::now();
    let (model, fit) = trainer.fit(&data, &mut UniformSampler, &mut rng);
    let serial_secs = t.elapsed().as_secs_f64();
    black_box(model.mf.params_sq_norm());
    assert!(!fit.diverged, "serial fit diverged");

    let par = Clapf::new(ClapfConfig {
        parallel: ParallelConfig {
            threads: 1,
            chunk_size: 0,
        },
        ..config
    });
    let t = Instant::now();
    let (pmodel, pfit) = par.fit_parallel(&data, &UniformSampler, SEED ^ 1);
    let par_secs = t.elapsed().as_secs_f64();
    black_box(pmodel.mf.params_sq_norm());
    assert!(!pfit.diverged, "one-worker fit diverged");

    let serial_sps = steps as f64 / serial_secs;
    let par_sps = steps as f64 / par_secs;
    emit(
        LegOut {
            n_pairs: data.n_pairs() as u64,
            train_dim: 16,
            train_steps: steps as u64,
            steps_per_sec: serial_sps,
            one_thread_steps_per_sec: par_sps,
            per_thread_efficiency: par_sps / serial_sps,
            ..LegOut::default()
        },
        baseline,
        serial_secs,
    );
}

/// Bulk-scoring throughput at d = 32: the SIMD `scores_for_users` against
/// its scalar reference, on the world's real catalogue size.
fn leg_eval(tag: &str) {
    let baseline = peak_rss_bytes();
    let cfg = world_config(tag);
    let dim = 32usize;
    let mut rng = SmallRng::seed_from_u64(SEED ^ 2);
    let model = MfModel::new(cfg.n_users, cfg.n_items, dim, Init::default(), &mut rng);

    let batch = 32usize.min(cfg.n_users as usize);
    let users: Vec<UserId> = (0..batch as u32).map(|u| UserId(u * 7 % cfg.n_users)).collect();
    let mut outs: Vec<Vec<f32>> = vec![Vec::new(); batch];

    // Warm both paths before timing: the first call pays the one-off costs
    // (allocating the 32 output rows, faulting the model tables in) and
    // must not be charged to whichever kernel happens to run first.
    model.scores_for_users(&users, &mut outs);
    model.scores_for_users_scalar(&users, &mut outs);

    let time_best = |f: &mut dyn FnMut()| {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let wide_secs = time_best(&mut || {
        model.scores_for_users(&users, &mut outs);
        black_box(outs[0][0]);
    });
    let wide_sum: f64 = outs.iter().map(|o| o.iter().map(|&x| x as f64).sum::<f64>()).sum();
    let scalar_secs = time_best(&mut || {
        model.scores_for_users_scalar(&users, &mut outs);
        black_box(outs[0][0]);
    });
    let scalar_sum: f64 = outs.iter().map(|o| o.iter().map(|&x| x as f64).sum::<f64>()).sum();
    // The wide kernel reassociates relative to the scalar one (bit-identity
    // is pinned wide-vs-portable-wide, not wide-vs-scalar), so the sanity
    // check here is a tolerance, not bit equality.
    let tol = 1e-3 * scalar_sum.abs().max(1.0);
    assert!(
        (wide_sum - scalar_sum).abs() <= tol,
        "SIMD and scalar bulk scorers disagree: {wide_sum} vs {scalar_sum}"
    );

    emit(
        LegOut {
            eval_dim: dim as u64,
            eval_batch_users: batch as u64,
            wide_users_per_sec: batch as f64 / wide_secs,
            scalar_users_per_sec: batch as f64 / scalar_secs,
            simd_speedup: scalar_secs / wide_secs,
            arch_dispatch: clapf_mf::arch_dispatch_active(),
            ..LegOut::default()
        },
        baseline,
        wide_secs,
    );
}

// -------------------------------------------------------------- parent --

#[derive(Serialize)]
struct WorldRow {
    tag: String,
    n_users: u32,
    n_items: u32,
    avg_degree: f64,
    n_pairs: u64,
    build_heap: LegOut,
    write_file: LegOut,
    open_mmap: LegOut,
    train: LegOut,
    eval: LegOut,
    /// Open-leg RSS growth as a fraction of the heap build's.
    mmap_rss_vs_heap_build: f64,
    simd_scoring_speedup: f64,
}

#[derive(Serialize)]
struct ScaleReport {
    available_cores: usize,
    simd_arch_dispatch: bool,
    smoke: bool,
    worlds: Vec<WorldRow>,
}

fn run_leg(leg: &str, tag: &str, file: &Path) -> LegOut {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .args(["--leg", leg, "--world", tag, "--file"])
        .arg(file)
        .output()
        .expect("spawn benchmark leg");
    if !out.status.success() {
        panic!(
            "leg {leg} ({tag}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let line = String::from_utf8(out.stdout).expect("leg output is UTF-8");
    serde_json::from_str(line.trim()).expect("leg output parses")
}

fn bench_world(tag: &str, scratch: &Path) -> WorldRow {
    let cfg = world_config(tag);
    let file = scratch.join(format!("scale_{tag}.csr"));
    eprintln!(
        "[{tag}] {} users × {} items, target degree {}",
        cfg.n_users, cfg.n_items, cfg.avg_degree
    );

    let build = run_leg("build", tag, &file);
    eprintln!(
        "[{tag}] heap build: {:.2}s, {:.1} MB peak delta",
        build.elapsed_secs,
        rss_delta(&build) as f64 / 1e6
    );
    let write = run_leg("write", tag, &file);
    eprintln!(
        "[{tag}] stream to file: {:.2}s, {:.1} MB file, {:.1} MB peak delta",
        write.elapsed_secs,
        write.file_bytes as f64 / 1e6,
        rss_delta(&write) as f64 / 1e6
    );
    let open = run_leg("open", tag, &file);
    let rss_ratio = rss_delta(&open) as f64 / rss_delta(&build) as f64;
    eprintln!(
        "[{tag}] mmap open: {:.4}s, {:.1} MB peak delta ({:.1}% of heap build)",
        open.elapsed_secs,
        rss_delta(&open) as f64 / 1e6,
        rss_ratio * 100.0
    );
    let train = run_leg("train", tag, &file);
    eprintln!(
        "[{tag}] train d=16: {:.0} steps/sec serial, {:.2} per-thread efficiency",
        train.steps_per_sec, train.per_thread_efficiency
    );
    let eval = run_leg("eval", tag, &file);
    eprintln!(
        "[{tag}] eval d=32: SIMD {:.2}× scalar ({:.1} users/sec)",
        eval.simd_speedup, eval.wide_users_per_sec
    );
    std::fs::remove_file(&file).ok();

    assert_eq!(
        build.n_pairs, write.n_pairs,
        "heap build and streaming writer disagree on pair count"
    );

    // The gates. Below ~100 MB of CSR the mmap side is dominated by
    // page-granularity sampling faults and fixed process overhead, so the
    // strict 25% bar only applies at the 10M world; smaller worlds get a
    // looser sanity bound. The SIMD bar applies to every full-size world.
    assert!(
        train.steps_per_sec.is_finite() && train.steps_per_sec > 0.0,
        "[{tag}] training made no progress"
    );
    if tag == "10M" {
        assert!(
            rss_ratio < 0.25,
            "[{tag}] mmap RSS ratio {rss_ratio:.2} ≥ 0.25"
        );
    } else {
        assert!(
            rss_ratio < 0.60,
            "[{tag}] mmap RSS ratio {rss_ratio:.2} ≥ 0.60"
        );
    }
    if tag != "smoke" {
        assert!(
            eval.simd_speedup >= 2.0,
            "[{tag}] SIMD speedup {:.2} < 2×",
            eval.simd_speedup
        );
    }

    WorldRow {
        tag: tag.to_string(),
        n_users: cfg.n_users,
        n_items: cfg.n_items,
        avg_degree: cfg.avg_degree,
        n_pairs: build.n_pairs,
        mmap_rss_vs_heap_build: rss_ratio,
        simd_scoring_speedup: eval.simd_speedup,
        build_heap: build,
        write_file: write,
        open_mmap: open,
        train,
        eval,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Child-leg mode: --leg NAME --world TAG --file PATH.
    if let Some(pos) = args.iter().position(|a| a == "--leg") {
        let get = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        let leg = args[pos + 1].as_str();
        let tag = get("--world").as_str();
        let file = PathBuf::from(get("--file"));
        match leg {
            "build" => leg_build(tag),
            "write" => leg_write(tag, &file),
            "open" => leg_open(&file),
            "train" => leg_train(&file),
            "eval" => leg_eval(tag),
            other => panic!("unknown leg {other:?}"),
        }
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let tags: &[&str] = if smoke { &["smoke"] } else { &["1M", "10M"] };

    let scratch = std::env::temp_dir().join("clapf_scale_bench");
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let worlds: Vec<WorldRow> = tags.iter().map(|t| bench_world(t, &scratch)).collect();

    let out = ScaleReport {
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        simd_arch_dispatch: clapf_mf::arch_dispatch_active(),
        smoke,
        worlds,
    };
    let path = out_dir.join("BENCH_scale.json");
    report::write_json(&path, &out).expect("write scale results");
    eprintln!("wrote {}", path.display());
}
