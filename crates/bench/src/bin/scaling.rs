//! Hogwild training-throughput scaling: steps/sec of `Clapf::fit_parallel`
//! at 1/2/4/8 worker threads against the serial `fit`, on the ML100K
//! stand-in world. Emits `results/BENCH_train_scaling.json` so the perf
//! trajectory is machine-readable across PRs.
//!
//! Speedup is hardware-bound: the JSON records the machine's core count so
//! a ratio measured on a small container is not mistaken for a regression.

use bench::Cli;
use clapf_core::{Clapf, ClapfConfig, ParallelConfig};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::Interactions;
use clapf_eval::report;
use clapf_sampling::UniformSampler;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct ScalingRow {
    threads: usize,
    steps: usize,
    elapsed_secs: f64,
    steps_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct ScalingReport {
    world: String,
    n_users: u32,
    n_items: u32,
    n_pairs: usize,
    dim: usize,
    available_cores: usize,
    serial_steps_per_sec: f64,
    rows: Vec<ScalingRow>,
}

fn world() -> Interactions {
    let cfg = WorldConfig {
        n_users: 400,
        n_items: 700,
        target_pairs: 20_000,
        ..WorldConfig::default()
    };
    generate(&cfg, &mut SmallRng::seed_from_u64(1)).unwrap()
}

fn main() {
    let cli = Cli::parse();
    let data = world();
    let dim = 20;
    // Enough epochs that thread startup/barrier cost is amortized but a
    // full sweep still takes seconds, not minutes.
    let steps = 50 * data.n_pairs();
    let config = ClapfConfig {
        dim,
        iterations: steps,
        ..ClapfConfig::map(0.4)
    };

    eprintln!(
        "scaling world: {} users × {} items, {} pairs, {} steps per run",
        data.n_users(),
        data.n_items(),
        data.n_pairs(),
        steps
    );

    let serial_secs = {
        let trainer = Clapf::new(config);
        let mut rng = SmallRng::seed_from_u64(2);
        let (model, report) = trainer.fit(&data, &mut UniformSampler, &mut rng);
        black_box(model.mf.params_sq_norm());
        report.elapsed.as_secs_f64()
    };
    let serial_sps = steps as f64 / serial_secs;
    eprintln!("serial: {serial_sps:.0} steps/sec ({serial_secs:.2}s)");

    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let trainer = Clapf::new(ClapfConfig {
            parallel: ParallelConfig {
                threads,
                chunk_size: 0,
            },
            ..config
        });
        let (model, fit_report) = trainer.fit_parallel(&data, &UniformSampler, 2);
        black_box(model.mf.params_sq_norm());
        assert!(!fit_report.diverged, "parallel fit diverged at {threads} threads");
        let secs = fit_report.elapsed.as_secs_f64();
        let sps = steps as f64 / secs;
        eprintln!(
            "threads={threads}: {sps:.0} steps/sec ({secs:.2}s, {:.2}× serial)",
            sps / serial_sps
        );
        rows.push(ScalingRow {
            threads,
            steps,
            elapsed_secs: secs,
            steps_per_sec: sps,
            speedup_vs_serial: sps / serial_sps,
        });
    }

    let out = ScalingReport {
        world: "ml100k-standin".to_string(),
        n_users: data.n_users(),
        n_items: data.n_items(),
        n_pairs: data.n_pairs(),
        dim,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        serial_steps_per_sec: serial_sps,
        rows,
    };
    let path = cli.out_dir.join("BENCH_train_scaling.json");
    report::write_json(&path, &out).expect("write scaling results");
    eprintln!("wrote {}", path.display());
}
