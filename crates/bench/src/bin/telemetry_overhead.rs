//! Telemetry overhead harness: trains the *same* CLAPF fit three ways —
//! the plain `fit` path, `fit_observed` with the disabled [`NoopObserver`],
//! and `fit_observed` with an enabled full-statistics observer — and emits
//! `results/BENCH_telemetry.json` with the relative wall-time overheads.
//!
//! Acceptance (pinned in the issue): an enabled observer costs < 2% wall
//! time, a disabled one ≈ 0% (the hot loop checks `enabled()` once per
//! epoch, not per step). Best-of-N timing keeps one-off scheduler noise
//! out of the percentages; the JSON records the core count so container
//! numbers are not mistaken for a regression.
//!
//! The harness also re-asserts the bit-identity contract: all three runs
//! must learn *identical* weights, or the times compare different work.

use bench::Cli;
use clapf_core::{Clapf, ClapfConfig};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::Interactions;
use clapf_eval::report;
use clapf_mf::MfModel;
use clapf_sampling::{DssMode, DssSampler};
use clapf_telemetry::{timed, Control, EpochStats, FitMeta, FitSummary, NoopObserver, TrainObserver};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;

#[derive(Serialize)]
struct TelemetryOverheadReport {
    dim: usize,
    iterations: usize,
    runs: usize,
    available_cores: usize,
    baseline_secs: f64,
    disabled_secs: f64,
    enabled_secs: f64,
    disabled_overhead_pct: f64,
    enabled_overhead_pct: f64,
    epochs_observed: usize,
}

/// An enabled observer that does everything a real consumer would: keeps
/// the full epoch history and folds every statistic into a checksum so
/// the compiler cannot discard the instrumentation.
#[derive(Default)]
struct FullObserver {
    epochs: Vec<EpochStats>,
    checksum: f64,
}

impl TrainObserver for FullObserver {
    fn on_fit_start(&mut self, meta: &FitMeta) {
        self.checksum += meta.iterations as f64;
    }

    fn on_epoch(&mut self, stats: &EpochStats) -> Control {
        self.checksum += stats.triples_per_sec + stats.loss + stats.user_norm + stats.item_norm;
        self.epochs.push(stats.clone());
        Control::Continue
    }

    fn on_fit_end(&mut self, summary: &FitSummary) {
        self.checksum += summary.steps as f64;
    }
}

fn world() -> Interactions {
    let cfg = WorldConfig {
        n_users: 400,
        n_items: 700,
        target_pairs: 20_000,
        ..WorldConfig::default()
    };
    generate(&cfg, &mut SmallRng::seed_from_u64(1)).unwrap()
}

fn trainer(iterations: usize) -> Clapf {
    Clapf::new(ClapfConfig {
        dim: 16,
        iterations,
        ..ClapfConfig::map(0.4)
    })
}

fn main() {
    let cli = Cli::parse();
    let data = world();
    // fast: ~5 epochs of the 20k-pair world per run; medium: ~50. Many
    // short interleaved rounds beat few long ones here: container load
    // drifts on a multi-second period, and best-of-N only cancels it if
    // every variant gets samples inside the fast phases.
    let (iterations, runs) = match cli.scale_name {
        "fast" => (100_000, 15usize),
        _ => (1_000_000, 7),
    };
    let t = trainer(iterations);

    let baseline = || {
        let mut rng = SmallRng::seed_from_u64(cli.scale.seed);
        let mut sampler = DssSampler::dss(DssMode::Map);
        let (m, _) = t.fit(&data, &mut sampler, &mut rng);
        m.mf
    };
    let disabled = || {
        let mut rng = SmallRng::seed_from_u64(cli.scale.seed);
        let mut sampler = DssSampler::dss(DssMode::Map);
        let (m, _) = t.fit_observed(&data, &mut sampler, &mut rng, &mut NoopObserver);
        m.mf
    };
    let mut epochs_observed = 0usize;
    let mut enabled = || {
        let mut rng = SmallRng::seed_from_u64(cli.scale.seed);
        let mut sampler = DssSampler::dss(DssMode::Map);
        let mut obs = FullObserver::default();
        let (m, _) = t.fit_observed(&data, &mut sampler, &mut rng, &mut obs);
        epochs_observed = obs.epochs.len();
        black_box(obs.checksum);
        m.mf
    };

    // One untimed warm-up, then interleave the variants round-robin so CPU
    // frequency / load drift hits all three equally instead of whichever
    // variant happens to run during a slow phase.
    let mut base_model: Option<MfModel> = None;
    let mut noop_model: Option<MfModel> = None;
    let mut observed_model: Option<MfModel> = None;
    black_box(baseline());
    let (mut baseline_secs, mut disabled_secs, mut enabled_secs) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..runs {
        let (m, wall) = timed(baseline);
        baseline_secs = baseline_secs.min(wall.as_secs_f64());
        base_model = Some(m);
        let (m, wall) = timed(disabled);
        disabled_secs = disabled_secs.min(wall.as_secs_f64());
        noop_model = Some(m);
        let (m, wall) = timed(&mut enabled);
        enabled_secs = enabled_secs.min(wall.as_secs_f64());
        observed_model = Some(m);
    }
    let (base_model, noop_model, observed_model) = (
        base_model.unwrap(),
        noop_model.unwrap(),
        observed_model.unwrap(),
    );

    // Observation must be invisible to the learned weights.
    assert_eq!(
        base_model.params_sq_norm().to_bits(),
        noop_model.params_sq_norm().to_bits(),
        "NoopObserver perturbed the fit"
    );
    assert_eq!(
        base_model.params_sq_norm().to_bits(),
        observed_model.params_sq_norm().to_bits(),
        "enabled observer perturbed the fit"
    );

    let pct = |secs: f64| (secs - baseline_secs) / baseline_secs * 100.0;
    let out = TelemetryOverheadReport {
        dim: 16,
        iterations,
        runs,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        baseline_secs,
        disabled_secs,
        enabled_secs,
        disabled_overhead_pct: pct(disabled_secs),
        enabled_overhead_pct: pct(enabled_secs),
        epochs_observed,
    };
    eprintln!(
        "{iterations} steps: baseline {baseline_secs:.3}s, disabled {disabled_secs:.3}s \
         ({:+.2}%), enabled {enabled_secs:.3}s ({:+.2}%, {epochs_observed} epochs)",
        out.disabled_overhead_pct, out.enabled_overhead_pct
    );
    let path = cli.out_dir.join("BENCH_telemetry.json");
    report::write_json(&path, &out).expect("write telemetry overhead results");
    eprintln!("wrote {}", path.display());
}
