//! Connection-scale smoke for the event-driven transport (tier-1, ISSUE 7).
//!
//! Holds ~2000 concurrent keep-alive connections open against one
//! event-loop server and proves three things the unit tests cannot:
//!
//! 1. **Scale.** Every connection is live simultaneously (requests are
//!    written across all sockets before any response is read, so thousands
//!    are genuinely in flight), over several rounds of keep-alive reuse
//!    with a hot/cold user mix driving both cache hits and batched misses.
//! 2. **Bit-identity.** Every response's item list must equal the offline
//!    evaluator's list for that user, byte for byte.
//! 3. **No leaks.** After graceful shutdown the process thread count is
//!    back to where it started — no scorer, loop, or watcher thread
//!    survives the drain.
//!
//! Exits nonzero (panics) on any violation. Connection count via
//! `CLAPF_SERVE_CONNS` (default 2000).

use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig, Transport};
use clapf_telemetry::Registry;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Threads currently in this process, from /proc (Linux); `None` elsewhere.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn main() {
    let n_conns: usize = std::env::var("CLAPF_SERVE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let rounds = 3usize;
    let (n_users, n_items, dim) = (1200u32, 2400u32, 8usize);
    let k = 10usize;

    // Synthetic bundle, same construction as a real `clapf fit --save`.
    let mut csv = String::new();
    for u in 0..n_users {
        for t in 0..6u32 {
            let i = (u * 7 + t * 131) % n_items;
            csv.push_str(&format!("u{u},i{i},5\n"));
        }
    }
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0)
        .expect("synthetic ratings load");
    let mut rng = SmallRng::seed_from_u64(7);
    let model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        dim,
        Init::default(),
        &mut rng,
    );
    let bundle = ModelBundle::new(
        "serve-conns fixture".into(),
        model,
        loaded.ids,
        &loaded.interactions,
    );
    let dir = std::env::temp_dir().join(format!("clapf-serve-conns-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bundle_path = dir.join("bundle.json");
    bundle.save(&bundle_path).expect("save bundle");

    // Hot/cold mix: 8 hot users shared by half the connections (cache hits
    // + miss coalescing), the rest spread over the catalog (batched cold
    // misses). Ground truth comes from the offline evaluator.
    let user_of = |conn: usize| -> String {
        if conn % 2 == 0 {
            format!("u{}", conn % 8)
        } else {
            format!("u{}", conn % n_users as usize)
        }
    };
    let mut expected: HashMap<String, String> = HashMap::new();
    for conn in 0..n_conns {
        let user = user_of(conn);
        expected.entry(user.clone()).or_insert_with(|| {
            let items = bundle.recommend_raw(&user, k).expect("offline top-k");
            let rendered: Vec<String> = items.iter().map(|i| format!("\"{i}\"")).collect();
            format!("[{}]", rendered.join(","))
        });
    }

    let threads_before = thread_count();
    let registry = Arc::new(Registry::new());
    let server = start(
        bundle_path.clone(),
        ServeConfig {
            transport: Transport::EventLoop,
            workers: 2,
            max_conns: n_conns + 64,
            ..ServeConfig::default()
        },
        Arc::clone(&registry),
    )
    .expect("server boots");
    let addr = server.addr();

    // Open every connection up front; all stay open to the end.
    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = Vec::with_capacity(n_conns);
    for c in 0..n_conns {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("connect #{c} failed: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        conns.push((stream, reader));
    }
    eprintln!("opened {n_conns} keep-alive connections");

    for round in 0..rounds {
        // Write phase: every socket gets a request before any response is
        // read — all n_conns requests are concurrently in flight.
        for (c, (writer, _)) in conns.iter_mut().enumerate() {
            let user = user_of(c);
            write!(writer, "GET /recommend/{user}?k={k} HTTP/1.1\r\nHost: s\r\n\r\n")
                .unwrap_or_else(|e| panic!("round {round} send #{c}: {e}"));
        }
        // Read phase: frame each response and check it bit-for-bit.
        for (c, (_, reader)) in conns.iter_mut().enumerate() {
            let user = user_of(c);
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .unwrap_or_else(|e| panic!("round {round} status #{c}: {e}"));
            assert!(line.contains(" 200 "), "round {round} conn {c}: {line:?}");
            let mut content_length = 0usize;
            loop {
                line.clear();
                reader.read_line(&mut line).expect("header");
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().expect("content-length");
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).expect("body");
            let body = String::from_utf8(body).expect("utf8 body");
            let want_items = &expected[&user];
            let got_items = body
                .split_once("\"items\":")
                .map(|(_, t)| t.trim_end_matches('}'))
                .unwrap_or("");
            assert_eq!(
                got_items, want_items,
                "round {round} conn {c} user {user}: served list diverged from offline"
            );
        }
        eprintln!("round {}/{rounds}: {n_conns} responses bit-identical", round + 1);
    }

    let peak = registry.gauge("serve.conns").get();
    assert!(
        peak >= n_conns as f64,
        "serve.conns gauge {peak} never reached {n_conns}"
    );

    drop(conns);
    server.shutdown();

    // Thread-leak check: give the OS a beat to reap, then compare.
    if let (Some(before), Some(())) = (threads_before, Some(())) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let now = thread_count().expect("thread count");
            if now <= before {
                eprintln!("threads: {before} before, {now} after shutdown — no leaks");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "thread leak: {before} before, {now} after shutdown"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    eprintln!("serve_conns smoke passed: {n_conns} conns x {rounds} rounds, zero leaks");
}
