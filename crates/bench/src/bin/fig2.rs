//! Regenerates Fig. 2 (Recall@k and NDCG@k for k ∈ {3, 5, 10, 15, 20}).

use bench::Cli;
use clapf_eval::{fig2, report};

fn main() {
    let cli = Cli::parse();
    let results = fig2::run(&cli.scale, None, |line| eprintln!("{line}"));
    for dataset in &results {
        println!("{}", fig2::render(dataset));
    }
    let path = cli.json_path("fig2");
    report::write_json(&path, &results).expect("write results");
    eprintln!("wrote {}", path.display());
}
