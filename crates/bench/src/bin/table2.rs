//! Regenerates Table 2 (the main comparison: 13 methods × 6 datasets ×
//! 7 metrics + training time).
//!
//! Pass `--tune` to select λ for MPR and the CLAPF rows by validation
//! NDCG@5 (the paper's Sec 6.3 protocol) instead of using the paper's
//! transcribed per-dataset values.

use bench::Cli;
use clapf_data::split::{Protocol, SplitStrategy};
use clapf_eval::{report, table2, tune};

fn main() {
    let tune_flag = std::env::args().any(|a| a == "--tune");
    let cli = Cli::parse_ignoring(&["--tune"]);
    let results = if tune_flag {
        run_tuned(&cli)
    } else {
        table2::run(&cli.scale, None, |line| eprintln!("{line}"))
    };
    for dataset in &results {
        println!("{}", table2::render(dataset));
    }
    let path = cli.json_path(if tune_flag { "table2-tuned" } else { "table2" });
    report::write_json(&path, &results).expect("write results");
    eprintln!("wrote {}", path.display());
}

fn run_tuned(cli: &Cli) -> Vec<table2::DatasetResult> {
    let scale = &cli.scale;
    let mut out = Vec::new();
    for spec in scale.datasets() {
        eprintln!("dataset {} (generating)", spec.name);
        let data = spec.generate();
        let protocol = Protocol {
            repeats: scale.repeats,
            train_fraction: 0.5,
            strategy: SplitStrategy::GlobalPairs,
            base_seed: scale.seed ^ spec.seed,
        };
        let folds = protocol.folds(&data).expect("datasets are splittable");
        let (methods, reports) = tune::tuned_methods(&folds[0], scale);
        for r in &reports {
            eprintln!(
                "  tuned {} (validation NDCG@5 {:.3})",
                r.selected, r.validation_ndcg5
            );
        }
        let rows = methods
            .iter()
            .map(|m| {
                let row = table2::run_method(m, &folds, scale);
                eprintln!(
                    "  {} {}: NDCG@5 {:.3} MAP {:.3}",
                    spec.name, row.method, row.ndcg5.mean, row.map.mean
                );
                row
            })
            .collect();
        out.push(table2::DatasetResult {
            dataset: spec.name.to_string(),
            rows,
        });
    }
    out
}
