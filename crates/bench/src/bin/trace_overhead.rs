//! Measures what request tracing costs the serve path (ISSUE 8).
//!
//! Three numbers, landing in `results/BENCH_trace.json`:
//!
//! * **Disabled sampler cost** — ns per [`Tracer::sample`] call when
//!   sampling is off. The budget is "one relaxed atomic load": the check
//!   every request pays forever, whether or not tracing is ever enabled.
//! * **End-to-end overhead** — keep-alive `/recommend` throughput against
//!   a real event-loop server with tracing off, at a realistic 1-in-64
//!   head sample, and at 1-in-1 (every request traced). Rounds interleave
//!   across the three servers and the best round per mode is kept, so
//!   drift (thermal, scheduler) hits every mode equally. The gate wired
//!   into tier-1 is ≤ 2% at the sampled rate.
//! * **Bit identity** — the warmup passes replay an identical request
//!   sequence (all users: a full miss cycle, then a full hit cycle)
//!   against the untraced and fully-traced servers and assert the bodies
//!   are byte-identical. Tracing only reads clocks; it must never change
//!   an answer.

use bench::Cli;
use clapf_data::loader::{load_ratings_reader, Separator};
use clapf_eval::report;
use clapf_mf::{Init, MfModel};
use clapf_serve::{start, ModelBundle, ServeConfig, Transport};
use clapf_telemetry::{Registry, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One keep-alive request; returns status and body.
fn request(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, path: &str) -> (u16, String) {
    write!(writer, "GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").expect("send request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(|v| v.trim().to_string())
        {
            content_length = v.parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One booted server plus a warm keep-alive client.
struct Lane {
    server: clapf_serve::ServerHandle,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Lane {
    fn boot(bundle_path: &std::path::Path, trace_sample: u64) -> Lane {
        let server = start(
            bundle_path.to_path_buf(),
            ServeConfig {
                transport: Transport::EventLoop,
                trace_sample,
                ..ServeConfig::default()
            },
            Arc::new(Registry::new()),
        )
        .expect("server boots");
        let addr: SocketAddr = server.addr();
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone stream");
        let reader = BufReader::new(stream);
        Lane {
            server,
            writer,
            reader,
        }
    }

    /// Replays `/recommend/u{0..n}?k={k}` once, returning the bodies.
    fn cycle(&mut self, n_users: u32, k: usize) -> Vec<String> {
        (0..n_users)
            .map(|u| {
                let (status, body) =
                    request(&mut self.writer, &mut self.reader, &format!("/recommend/u{u}?k={k}"));
                assert_eq!(status, 200, "u{u}");
                body
            })
            .collect()
    }

    /// Times `requests` cache-hot requests round-robin over the users.
    fn measure(&mut self, n_users: u32, k: usize, requests: usize) -> Duration {
        let t0 = Instant::now();
        for i in 0..requests {
            let u = i as u32 % n_users;
            let (status, _) =
                request(&mut self.writer, &mut self.reader, &format!("/recommend/u{u}?k={k}"));
            assert_eq!(status, 200);
        }
        t0.elapsed()
    }
}

#[derive(Serialize)]
struct TraceOverheadReport {
    scale: String,
    n_users: u32,
    n_items: u32,
    dim: usize,
    k: usize,
    rounds: usize,
    requests_per_round: usize,
    /// ns per `Tracer::sample()` call with sampling disabled (the always-on
    /// cost: one relaxed load).
    disabled_sample_ns: f64,
    /// Head-sampling rate of the "sampled" lane.
    sample_every: u64,
    qps_off: f64,
    qps_sampled: f64,
    qps_full: f64,
    /// Throughput cost of 1-in-`sample_every` sampling vs. tracing off, in
    /// percent (negative = within noise). The tier-1 gate is ≤ 2.0.
    overhead_sampled_pct: f64,
    /// Same, with every request traced.
    overhead_full_pct: f64,
    /// Warmup replays byte-compared untraced vs. fully-traced bodies.
    responses_bit_identical: bool,
}

fn main() {
    let cli = Cli::parse();
    let (n_users, n_items, dim, requests, rounds, sample_iters) = match cli.scale_name {
        "fast" => (64u32, 2_000u32, 16usize, 4_000usize, 5usize, 1usize << 24),
        _ => (256, 8_000, 32, 40_000, 7, 1usize << 26),
    };
    let k = 10usize;
    let sample_every = 64u64;

    // Disabled-sampler cost: the per-request tax when tracing is off.
    let tracer = std::hint::black_box(Tracer::disabled());
    let t0 = Instant::now();
    for _ in 0..sample_iters {
        std::hint::black_box(tracer.sample());
    }
    let disabled_sample_ns = t0.elapsed().as_nanos() as f64 / sample_iters as f64;
    eprintln!("disabled Tracer::sample(): {disabled_sample_ns:.2} ns/call");

    // Synthetic bundle, same loader path a real `clapf fit --save` takes.
    let mut csv = String::new();
    for u in 0..n_users {
        for t in 0..8u32 {
            let i = (u * 13 + t * 97) % n_items;
            csv.push_str(&format!("u{u},i{i},5\n"));
        }
    }
    let loaded = load_ratings_reader(std::io::Cursor::new(csv), Separator::Comma, 3.0)
        .expect("synthetic ratings load");
    let mut rng = SmallRng::seed_from_u64(cli.scale.seed);
    let model = MfModel::new(
        loaded.interactions.n_users(),
        loaded.interactions.n_items(),
        dim,
        Init::default(),
        &mut rng,
    );
    let bundle = ModelBundle::new(
        format!("trace-overhead fixture d={dim}"),
        model,
        loaded.ids,
        &loaded.interactions,
    );
    let dir = std::env::temp_dir().join(format!("clapf-trace-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bundle_path = dir.join("bundle.json");
    bundle.save(&bundle_path).expect("save bundle");

    let mut off = Lane::boot(&bundle_path, 0);
    let mut sampled = Lane::boot(&bundle_path, sample_every);
    let mut full = Lane::boot(&bundle_path, 1);

    // Warmup doubles as the bit-identity check: a full miss cycle (every
    // user scored through the batcher) then a full hit cycle, byte-compared
    // between the untraced and fully-traced servers.
    let miss_off = off.cycle(n_users, k);
    let miss_full = full.cycle(n_users, k);
    assert_eq!(miss_off, miss_full, "tracing changed a miss response");
    sampled.cycle(n_users, k);
    let hit_off = off.cycle(n_users, k);
    let hit_full = full.cycle(n_users, k);
    assert_eq!(hit_off, hit_full, "tracing changed a hit response");
    sampled.cycle(n_users, k);
    eprintln!("bit identity: {} bodies byte-identical untraced vs. 1-in-1", 2 * n_users);

    // Interleaved best-of-N: each round times all three lanes back to back.
    let mut best = [Duration::MAX; 3];
    for round in 0..rounds {
        for (slot, lane) in [&mut off, &mut sampled, &mut full].into_iter().enumerate() {
            let d = lane.measure(n_users, k, requests);
            if d < best[slot] {
                best[slot] = d;
            }
            eprintln!(
                "round {round} lane {slot}: {:.0} req/s",
                requests as f64 / d.as_secs_f64()
            );
        }
    }
    off.server.shutdown();
    sampled.server.shutdown();
    full.server.shutdown();

    let qps = |d: Duration| requests as f64 / d.as_secs_f64();
    let (qps_off, qps_sampled, qps_full) = (qps(best[0]), qps(best[1]), qps(best[2]));
    let pct = |traced: f64| (qps_off / traced - 1.0) * 100.0;
    let out = TraceOverheadReport {
        scale: cli.scale_name.to_string(),
        n_users,
        n_items,
        dim,
        k,
        rounds,
        requests_per_round: requests,
        disabled_sample_ns,
        sample_every,
        qps_off,
        qps_sampled,
        qps_full,
        overhead_sampled_pct: pct(qps_sampled),
        overhead_full_pct: pct(qps_full),
        responses_bit_identical: true,
    };
    eprintln!(
        "off {qps_off:.0} qps | 1-in-{sample_every} {qps_sampled:.0} qps ({:+.2}%) | \
         1-in-1 {qps_full:.0} qps ({:+.2}%)",
        out.overhead_sampled_pct, out.overhead_full_pct
    );
    let path = cli.out_dir.join("BENCH_trace.json");
    report::write_json(&path, &out).expect("write trace overhead results");
    eprintln!("wrote {}", path.display());
    std::fs::remove_dir_all(&dir).ok();
}
