//! Regenerates Fig. 4 (learning convergence of CLAPF under Uniform /
//! Positive / Negative / DSS sampling).

use bench::Cli;
use clapf_eval::{fig4, report};

fn main() {
    let cli = Cli::parse();
    let results = fig4::run(&cli.scale, |line| eprintln!("{line}"));
    for conv in &results {
        println!("{}", fig4::render(conv));
    }
    let path = cli.json_path("fig4");
    report::write_json(&path, &results).expect("write results");
    eprintln!("wrote {}", path.display());
}
