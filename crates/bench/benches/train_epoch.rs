//! The Table 2 "time" column: per-epoch training cost of each method.
//!
//! The paper's claims are about ordering — CLAPF ≈ BPR ≪ CLiMF, DSS adds
//! only amortized overhead — which these benches reproduce on the ML100K
//! stand-in.

use clapf_baselines::{Bpr, BprConfig, Climf, ClimfConfig, Mpr, MprConfig, Wmf, WmfConfig};
use clapf_core::{Clapf, ClapfConfig, ParallelConfig};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::Interactions;
use clapf_mf::SgdConfig;
use clapf_sampling::{DssMode, DssSampler, UniformSampler};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn world() -> Interactions {
    let cfg = WorldConfig {
        n_users: 400,
        n_items: 700,
        target_pairs: 20_000,
        ..WorldConfig::default()
    };
    generate(&cfg, &mut SmallRng::seed_from_u64(1)).unwrap()
}

/// One "epoch" = |P| SGD steps for the sampling methods.
fn bench_train(c: &mut Criterion) {
    let data = world();
    let steps = data.n_pairs();
    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);

    group.bench_function("bpr", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let model = Bpr {
                config: BprConfig {
                    dim: 20,
                    iterations: steps,
                    ..BprConfig::default()
                },
            }
            .fit(&data, &mut rng);
            black_box(model.model.params_sq_norm())
        })
    });

    group.bench_function("mpr", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let model = Mpr {
                config: MprConfig {
                    dim: 20,
                    iterations: steps,
                    ..MprConfig::default()
                },
            }
            .fit(&data, &mut rng);
            black_box(model.model.params_sq_norm())
        })
    });

    group.bench_function("clapf_map_uniform", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let trainer = Clapf::new(ClapfConfig {
                dim: 20,
                iterations: steps,
                sgd: SgdConfig::default(),
                ..ClapfConfig::map(0.4)
            });
            let (model, _) = trainer.fit(&data, &mut UniformSampler, &mut rng);
            black_box(model.mf.params_sq_norm())
        })
    });

    group.bench_function("clapf_map_dss", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let trainer = Clapf::new(ClapfConfig {
                dim: 20,
                iterations: steps,
                ..ClapfConfig::map(0.4)
            });
            let mut sampler = DssSampler::dss(DssMode::Map);
            let (model, _) = trainer.fit(&data, &mut sampler, &mut rng);
            black_box(model.mf.params_sq_norm())
        })
    });

    // Hogwild scaling: the same CLAPF epoch with 1/2/4/8 lock-free workers.
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("clapf_par{threads}"), |b| {
            b.iter(|| {
                let trainer = Clapf::new(ClapfConfig {
                    dim: 20,
                    iterations: steps,
                    parallel: ParallelConfig {
                        threads,
                        chunk_size: 0,
                    },
                    ..ClapfConfig::map(0.4)
                });
                let (model, _) = trainer.fit_parallel(&data, &UniformSampler, 2);
                black_box(model.mf.params_sq_norm())
            })
        });
    }

    group.bench_function("climf", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let model = Climf {
                config: ClimfConfig {
                    dim: 20,
                    epochs: 1,
                    ..ClimfConfig::default()
                },
            }
            .fit(&data, &mut rng);
            black_box(model.model.params_sq_norm())
        })
    });

    group.bench_function("wmf_sweep", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let model = Wmf {
                config: WmfConfig {
                    dim: 20,
                    sweeps: 1,
                    ..WmfConfig::default()
                },
            }
            .fit(&data, &mut rng);
            black_box(model.model.params_sq_norm())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
