//! Neural-substrate benchmarks: per-example training step and bulk scoring
//! of the NCF-family baselines (the cost that dominates their Table 2
//! `time` column).

use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::{Interactions, UserId};
use clapf_neural::{DeepIcf, DeepIcfConfig, NeuMf, NeuMfConfig, NeuPr, NeuPrConfig};
use clapf_core::Recommender;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn world() -> Interactions {
    generate(
        &WorldConfig {
            n_users: 300,
            n_items: 800,
            target_pairs: 9_000,
            ..WorldConfig::default()
        },
        &mut SmallRng::seed_from_u64(8),
    )
    .unwrap()
}

fn bench_neural(c: &mut Criterion) {
    let data = world();
    let mut group = c.benchmark_group("neural");
    group.sample_size(10);

    group.bench_function("neumf_train_epoch", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let model = NeuMf {
                config: NeuMfConfig {
                    embed_dim: 16,
                    epochs: 1,
                    ..NeuMfConfig::default()
                },
            }
            .fit(&data, &mut rng);
            black_box(model.has_non_finite())
        })
    });

    group.bench_function("neupr_train_epoch", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let model = NeuPr {
                config: NeuPrConfig {
                    embed_dim: 16,
                    epochs: 1,
                    ..NeuPrConfig::default()
                },
            }
            .fit(&data, &mut rng);
            black_box(model.has_non_finite())
        })
    });

    group.bench_function("deepicf_train_epoch", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let model = DeepIcf {
                config: DeepIcfConfig {
                    embed_dim: 16,
                    epochs: 1,
                    ..DeepIcfConfig::default()
                },
            }
            .fit(&data, &mut rng);
            black_box(model.has_non_finite())
        })
    });

    // Bulk scoring: the evaluation-side cost.
    let mut rng = SmallRng::seed_from_u64(2);
    let neumf = NeuMf {
        config: NeuMfConfig {
            embed_dim: 16,
            epochs: 1,
            ..NeuMfConfig::default()
        },
    }
    .fit(&data, &mut rng);
    group.bench_function("neumf_score_catalogue", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            neumf.scores_into(UserId(7), &mut out);
            black_box(out.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_neural);
criterion_main!(benches);
