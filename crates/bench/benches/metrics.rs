//! Evaluation-loop benchmarks: full-ranking metric computation over a
//! train/test split (the dominant cost of the Table 2 grid after training).

use clapf_data::split::{split, SplitStrategy};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::UserId;
use clapf_metrics::{evaluate, evaluate_serial, EvalConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_metrics(c: &mut Criterion) {
    let cfg = WorldConfig {
        n_users: 400,
        n_items: 1_500,
        target_pairs: 20_000,
        ..WorldConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(6);
    let data = generate(&cfg, &mut rng).unwrap();
    let s = split(&data, SplitStrategy::GlobalPairs, 0.5, &mut rng).unwrap();
    // A deterministic pseudo-model: hashed scores.
    let scorer = |u: UserId, out: &mut Vec<f32>| {
        out.clear();
        for i in 0..1_500u32 {
            out.push(((u.0.wrapping_mul(2654435761).wrapping_add(i * 40503)) % 65_536) as f32);
        }
    };
    let eval_cfg = EvalConfig::default();

    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    group.bench_function("evaluate_serial", |b| {
        b.iter(|| black_box(evaluate_serial(&scorer, &s.train, &s.test, &eval_cfg)))
    });
    group.bench_function("evaluate_parallel", |b| {
        b.iter(|| black_box(evaluate(&scorer, &s.train, &s.test, &eval_cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
