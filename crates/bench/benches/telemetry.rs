//! Telemetry-layer costs: the registry primitives a Hogwild worker would
//! hammer (counter/histogram updates) and the end-to-end observer overhead
//! on a real CLAPF fit (noop vs. disabled vs. enabled-full-stats).
//!
//! The fit triad backs the < 2% enabled / ≈ 0% disabled acceptance bound;
//! `telemetry_overhead` (the binary) reports the same triad as JSON.

use clapf_core::{Clapf, ClapfConfig};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::Interactions;
use clapf_sampling::{DssMode, DssSampler};
use clapf_telemetry::{Control, EpochStats, NoopObserver, Registry, TrainObserver};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn world() -> Interactions {
    let cfg = WorldConfig {
        n_users: 200,
        n_items: 400,
        target_pairs: 8_000,
        ..WorldConfig::default()
    };
    generate(&cfg, &mut SmallRng::seed_from_u64(1)).unwrap()
}

/// Relaxed-atomic registry primitives: these run inside sampler/eval hot
/// paths, so their cost per call is what bounds instrumentation overhead.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");
    let reg = Registry::new();
    let counter = reg.counter("bench.counter");
    let hist = reg.histogram("bench.hist", || {
        clapf_telemetry::Histogram::exponential(1.0, 2.0, 12)
    });

    group.bench_function("counter_add", |b| {
        b.iter(|| counter.add(black_box(3)))
    });
    group.bench_function("histogram_record", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x * 6364136223846793005).wrapping_add(1442695040888963407);
            hist.record(black_box((x >> 52) as f64))
        })
    });
    group.bench_function("registry_snapshot", |b| {
        b.iter(|| black_box(reg.snapshot()))
    });
    group.finish();
}

/// An enabled observer paying full epoch-statistics cost.
#[derive(Default)]
struct FullObserver {
    checksum: f64,
}

impl TrainObserver for FullObserver {
    fn on_epoch(&mut self, stats: &EpochStats) -> Control {
        self.checksum += stats.loss + stats.user_norm + stats.item_norm + stats.triples_per_sec;
        Control::Continue
    }
}

/// The same CLAPF-over-DSS fit (the paper's pipeline, as in the
/// `telemetry_overhead` harness) with no observer, a disabled observer,
/// and an enabled one — the three points of the overhead acceptance bound.
fn bench_observed_fit(c: &mut Criterion) {
    let data = world();
    let steps = data.n_pairs() * 4;
    let trainer = Clapf::new(ClapfConfig {
        dim: 16,
        iterations: steps,
        ..ClapfConfig::map(0.4)
    });
    let mut group = c.benchmark_group("telemetry_fit");
    group.sample_size(10);

    group.bench_function("fit_plain", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let mut sampler = DssSampler::dss(DssMode::Map);
            let (m, _) = trainer.fit(&data, &mut sampler, &mut rng);
            black_box(m.mf.params_sq_norm())
        })
    });
    group.bench_function("fit_observer_disabled", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let mut sampler = DssSampler::dss(DssMode::Map);
            let (m, _) = trainer.fit_observed(&data, &mut sampler, &mut rng, &mut NoopObserver);
            black_box(m.mf.params_sq_norm())
        })
    });
    group.bench_function("fit_observer_enabled", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            let mut sampler = DssSampler::dss(DssMode::Map);
            let mut obs = FullObserver::default();
            let (m, _) = trainer.fit_observed(&data, &mut sampler, &mut rng, &mut obs);
            black_box(obs.checksum);
            black_box(m.mf.params_sq_norm())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_observed_fit);
criterion_main!(benches);
