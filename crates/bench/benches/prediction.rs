//! Prediction-path benchmarks: the O(d) single score the paper cites
//! (Sec 4.3), full-catalogue scoring, and top-k recommendation.

use clapf_core::{Clapf, ClapfConfig, Recommender};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::UserId;
use clapf_sampling::UniformSampler;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_prediction(c: &mut Criterion) {
    let cfg = WorldConfig {
        n_users: 500,
        n_items: 2_000,
        target_pairs: 25_000,
        ..WorldConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(5);
    let data = generate(&cfg, &mut rng).unwrap();
    let trainer = Clapf::new(ClapfConfig {
        iterations: 20_000,
        ..ClapfConfig::map(0.4)
    });
    let (model, _) = trainer.fit(&data, &mut UniformSampler, &mut rng);

    let mut group = c.benchmark_group("prediction");
    group.bench_function("single_score", |b| {
        b.iter(|| black_box(model.score(UserId(7), clapf_data::ItemId(1234))))
    });
    group.bench_function("score_catalogue", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            model.scores_into(UserId(7), &mut out);
            black_box(out.len())
        })
    });
    group.bench_function("recommend_top10", |b| {
        b.iter(|| black_box(model.recommend(UserId(7), 10, Some(&data))))
    });
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
