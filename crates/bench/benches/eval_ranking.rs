//! Ranking-engine benchmarks: the sort-free evaluator against the retained
//! full-sort path on an MF-backed scorer, and the amortized DSS refresh.

use clapf_data::{InteractionsBuilder, Interactions, ItemId, UserId};
use clapf_metrics::{evaluate_serial, evaluate_serial_naive, EvalConfig};
use clapf_mf::{Init, MfModel};
use clapf_sampling::{DssMode, DssSampler, TripleSampler};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Deterministic train/test interactions: 8 train + 4 test items per user,
/// strided so every user touches a different slice of the catalogue.
fn interactions(n_users: u32, n_items: u32) -> (Interactions, Interactions) {
    let mut tr = InteractionsBuilder::new(n_users, n_items);
    let mut te = InteractionsBuilder::new(n_users, n_items);
    for u in 0..n_users {
        for t in 0..8u32 {
            tr.push(UserId(u), ItemId((u * 13 + t * 97) % n_items)).ok();
        }
        for t in 0..4u32 {
            te.push(UserId(u), ItemId((u * 29 + t * 53 + 7) % n_items)).ok();
        }
    }
    (tr.build().unwrap(), te.build().unwrap())
}

fn bench_eval_full_ranking(c: &mut Criterion) {
    let (n_users, n_items, dim) = (400u32, 4_000u32, 32usize);
    let mut rng = SmallRng::seed_from_u64(3);
    let model = MfModel::new(n_users, n_items, dim, Init::default(), &mut rng);
    let (train, test) = interactions(n_users, n_items);
    let cfg = EvalConfig::default();

    let mut group = c.benchmark_group("eval_full_ranking");
    group.sample_size(10);
    group.bench_function("sortfree", |b| {
        b.iter(|| black_box(evaluate_serial(&model, &train, &test, &cfg)))
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(evaluate_serial_naive(&model, &train, &test, &cfg)))
    });
    group.finish();
}

fn bench_dss_refresh(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let model = MfModel::new(100, 20_000, 32, Init::default(), &mut rng);

    let mut group = c.benchmark_group("dss_refresh");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        // Fresh sampler each iteration: rebuilds every factor list.
        b.iter(|| {
            let mut s = DssSampler::dss(DssMode::Map);
            s.refresh(&model);
            black_box(&s);
        })
    });
    group.bench_function("warm", |b| {
        // Steady state: re-sorts the already-sorted lists in place.
        let mut s = DssSampler::dss(DssMode::Map);
        s.refresh(&model);
        b.iter(|| {
            s.refresh(&model);
            black_box(&s);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_eval_full_ranking, bench_dss_refresh);
criterion_main!(benches);
