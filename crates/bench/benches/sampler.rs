//! Sampler micro-benchmarks: per-draw cost of Uniform vs DSS and the DSS
//! ranking-list refresh that the paper amortizes "every log(m) iterations".

use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::Interactions;
use clapf_mf::{Init, MfModel};
use clapf_sampling::{sample_observed_pair, DssMode, DssSampler, TripleSampler, UniformSampler};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixture() -> (Interactions, MfModel) {
    let cfg = WorldConfig {
        n_users: 500,
        n_items: 2_000,
        target_pairs: 30_000,
        ..WorldConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(3);
    let data = generate(&cfg, &mut rng).unwrap();
    let model = MfModel::new(data.n_users(), data.n_items(), 20, Init::default(), &mut rng);
    (data, model)
}

fn bench_samplers(c: &mut Criterion) {
    let (data, model) = fixture();
    let mut group = c.benchmark_group("sampler");

    group.bench_function("uniform_triple", |b| {
        let mut sampler = UniformSampler;
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| {
            let (u, i) = sample_observed_pair(&data, &mut rng);
            black_box(sampler.complete(&data, &model, u, i, &mut rng))
        })
    });

    group.bench_function("dss_triple", |b| {
        let mut sampler = DssSampler::dss(DssMode::Map);
        sampler.refresh(&model);
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| {
            let (u, i) = sample_observed_pair(&data, &mut rng);
            black_box(sampler.complete(&data, &model, u, i, &mut rng))
        })
    });

    group.bench_function("dss_refresh", |b| {
        let mut sampler = DssSampler::dss(DssMode::Map);
        b.iter(|| {
            sampler.refresh(&model);
            black_box(sampler.name())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
