//! End-to-end guarantees of the streaming data path: chunking never
//! changes the world, the file round-trip is exact, and the mmap-backed
//! view agrees bit-for-bit with the heap build.

use clapf_data::stream::{StreamConfig, StreamWorld};
use clapf_data::{Interactions, ItemId, UserId};
use std::path::PathBuf;

fn world_100k() -> StreamWorld {
    // ~100k pairs: 20k users × 8k items × avg degree 5.
    StreamWorld::new(StreamConfig::scale(20_000, 8_000, 5.0, 20260807)).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("clapf_stream_world_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn assert_bit_identical(a: &Interactions, b: &Interactions) {
    assert_eq!(a.n_users(), b.n_users());
    assert_eq!(a.n_items(), b.n_items());
    assert_eq!(a.n_pairs(), b.n_pairs());
    for u in a.users() {
        assert_eq!(a.items_of(u), b.items_of(u), "items of {u} differ");
    }
    for i in a.items() {
        assert_eq!(a.users_of(i), b.users_of(i), "users of {i} differ");
    }
}

/// The tentpole determinism property: one chunk, many tiny chunks and an
/// uneven chunk size all produce the identical matrix.
#[test]
fn chunk_size_never_changes_the_world() {
    let w = StreamWorld::new(StreamConfig::scale(3_000, 900, 4.0, 99)).unwrap();
    let whole = w.build_chunked(3_000);
    for chunk in [1usize, 7, 256, 2_999, 100_000] {
        let chunked = w.build_chunked(chunk);
        assert_bit_identical(&whole, &chunked);
    }
    assert_bit_identical(&whole, &w.build());
}

/// Same config ⇒ same world, across independently derived `StreamWorld`s.
#[test]
fn same_seed_is_reproducible_different_seed_is_not() {
    let cfg = StreamConfig::scale(1_000, 400, 3.0, 5);
    let a = StreamWorld::new(cfg.clone()).unwrap().build();
    let b = StreamWorld::new(cfg.clone()).unwrap().build();
    assert_bit_identical(&a, &b);

    let c = StreamWorld::new(StreamConfig {
        seed: 6,
        ..cfg
    })
    .unwrap()
    .build();
    assert!(
        a.users().any(|u| a.items_of(u) != c.items_of(u)),
        "different seeds produced the same world"
    );
}

/// `items_for_user` answers point queries identically to the bulk build —
/// the generator really is a pure function of `(config, user)`.
#[test]
fn point_queries_match_bulk_build() {
    let w = StreamWorld::new(StreamConfig::scale(500, 300, 6.0, 17)).unwrap();
    let d = w.build();
    let mut row = Vec::new();
    for u in d.users() {
        w.items_for_user(u, &mut row);
        assert_eq!(d.items_of(u), &row[..]);
    }
}

/// The streaming writer and the in-memory build describe the same world:
/// `write_csr` → `open_csr` (mmap where supported) and → `load_csr_heap`
/// both reproduce the heap build bit-for-bit on a ~100k-pair world.
#[test]
fn mmap_and_heap_loads_agree_with_direct_build() {
    let w = world_100k();
    let built = w.build();

    let path = tmp("world_100k.csr");
    let written = w.write_csr(&path).unwrap();
    assert_eq!(written as usize, built.n_pairs());

    let heap = Interactions::load_csr_heap(&path).unwrap();
    assert!(!heap.is_mapped());
    assert_bit_identical(&built, &heap);

    let mapped = Interactions::open_csr(&path).unwrap();
    if cfg!(all(unix, target_pointer_width = "64", target_endian = "little")) {
        assert!(mapped.is_mapped(), "expected the mmap fast path here");
    }
    assert_bit_identical(&built, &mapped);
    mapped.validate_csr().unwrap();

    // Random access through the mapped arrays (pair_at binary-searches
    // user_ptr, contains binary-searches a row) behaves identically too.
    for idx in [0usize, 1, built.n_pairs() / 2, built.n_pairs() - 1] {
        assert_eq!(built.pair_at(idx), mapped.pair_at(idx));
    }
    for u in [UserId(0), UserId(9_999), UserId(19_999)] {
        for i in [ItemId(0), ItemId(4_000), ItemId(7_999)] {
            assert_eq!(built.contains(u, i), mapped.contains(u, i));
        }
    }
    std::fs::remove_file(&path).ok();
}

/// `Interactions::write_csr` (serialize an existing matrix) and
/// `StreamWorld::write_csr` (stream the world directly) emit identical
/// bytes.
#[test]
fn streaming_writer_matches_in_memory_writer() {
    let w = StreamWorld::new(StreamConfig::scale(800, 250, 4.0, 23)).unwrap();
    let streamed = tmp("streamed.csr");
    let serialized = tmp("serialized.csr");
    w.write_csr(&streamed).unwrap();
    w.build().write_csr(&serialized).unwrap();
    assert_eq!(
        std::fs::read(&streamed).unwrap(),
        std::fs::read(&serialized).unwrap(),
        "the two writers disagree byte-for-byte"
    );
    std::fs::remove_file(&streamed).ok();
    std::fs::remove_file(&serialized).ok();
}

/// Corrupt files are rejected up front (shallow checks) or by the deep
/// validator — never by UB or a garbage matrix that looks fine.
#[test]
fn corrupt_files_are_rejected() {
    let w = StreamWorld::new(StreamConfig::scale(300, 100, 3.0, 41)).unwrap();
    let path = tmp("corrupt.csr");
    w.write_csr(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Bad magic.
    let mut bytes = pristine.clone();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(Interactions::open_csr(&path).is_err());

    // Truncation.
    std::fs::write(&path, &pristine[..pristine.len() - 1]).unwrap();
    assert!(Interactions::open_csr(&path).is_err());

    // Header claims more pairs than the file holds.
    let mut bytes = pristine.clone();
    bytes[32] = bytes[32].wrapping_add(1);
    std::fs::write(&path, &bytes).unwrap();
    assert!(Interactions::open_csr(&path).is_err());

    // In-bounds corruption of an offset: shallow open may succeed, but the
    // deep validator catches it and the heap loader rejects outright.
    let mut bytes = pristine.clone();
    bytes[40 + 8] = 0xEE;
    std::fs::write(&path, &bytes).unwrap();
    if let Ok(d) = Interactions::open_csr(&path) {
        assert!(d.validate_csr().is_err());
    }
    assert!(Interactions::load_csr_heap(&path).is_err());
    std::fs::remove_file(&path).ok();
}
