//! Property-based tests for the data substrate.

use clapf_data::split::{holdout_validation, split, SplitStrategy};
use clapf_data::synthetic::{generate, WorldConfig};
use clapf_data::{InteractionsBuilder, ItemId, UserId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Strategy producing a small random interaction set (≥ 2 pairs).
fn arb_interactions() -> impl Strategy<Value = clapf_data::Interactions> {
    (2u32..20, 2u32..25).prop_flat_map(|(n_users, n_items)| {
        proptest::collection::hash_set((0..n_users, 0..n_items), 2..60).prop_filter_map(
            "needs at least 2 pairs",
            move |set| {
                let mut b = InteractionsBuilder::new(n_users, n_items);
                for (u, i) in &set {
                    b.push(UserId(*u), ItemId(*i)).ok()?;
                }
                b.build().ok()
            },
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_consistent(data in arb_interactions()) {
        // user→items and item→users describe the same pair set.
        let from_users: HashSet<_> = data.pairs().collect();
        let mut from_items = HashSet::new();
        for i in data.items() {
            for &u in data.users_of(i) {
                from_items.insert((u, i));
            }
        }
        prop_assert_eq!(from_users, from_items);
    }

    #[test]
    fn contains_matches_pair_set(data in arb_interactions()) {
        let set: HashSet<_> = data.pairs().collect();
        for u in data.users() {
            for i in data.items() {
                prop_assert_eq!(data.contains(u, i), set.contains(&(u, i)));
            }
        }
    }

    #[test]
    fn split_partitions_pairs(data in arb_interactions(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok(s) = split(&data, SplitStrategy::GlobalPairs, 0.5, &mut rng) {
            let train: HashSet<_> = s.train.pairs().collect();
            let test: HashSet<_> = s.test.pairs().collect();
            prop_assert!(train.is_disjoint(&test));
            prop_assert_eq!(train.len() + test.len(), data.n_pairs());
        }
    }

    #[test]
    fn per_user_split_partitions_pairs(data in arb_interactions(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok(s) = split(&data, SplitStrategy::PerUser, 0.5, &mut rng) {
            let train: HashSet<_> = s.train.pairs().collect();
            let test: HashSet<_> = s.test.pairs().collect();
            prop_assert!(train.is_disjoint(&test));
            let all: HashSet<_> = data.pairs().collect();
            let joined: HashSet<_> = train.union(&test).copied().collect();
            prop_assert_eq!(joined, all);
        }
    }

    #[test]
    fn validation_holdout_is_lossless(data in arb_interactions(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (reduced, val) = holdout_validation(&data, &mut rng);
        let mut joined: Vec<_> = reduced.pairs().chain(val.pairs()).collect();
        joined.sort_unstable();
        let mut all = data.pairs_vec();
        all.sort_unstable();
        prop_assert_eq!(joined, all);
    }

    #[test]
    fn generator_hits_exact_pair_count(
        n_users in 5u32..40,
        n_items in 5u32..40,
        seed in 0u64..500,
    ) {
        let max_pairs = (n_users as usize * n_items as usize) / 2;
        let target = max_pairs.max(n_users as usize + 1);
        let cfg = WorldConfig {
            n_users,
            n_items,
            target_pairs: target,
            ..WorldConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = generate(&cfg, &mut rng).unwrap();
        prop_assert_eq!(d.n_pairs(), target.min(n_users as usize * n_items as usize));
        // No user exceeds the item count, no duplicates.
        for u in d.users() {
            let items = d.items_of(u);
            prop_assert!(items.len() <= n_items as usize);
            for w in items.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
