//! Chunked, constant-memory synthetic worlds at the million scale.
//!
//! [`crate::synthetic::generate`] materializes every candidate score for
//! every user — fine for the paper-sized worlds, hopeless for a
//! 2.5M-user × 1M-item world. This module generates the same *kind* of
//! world (planted low-rank preferences + long-tail popularity) as a
//! **stream**: each user's item list is a pure function of
//! `(config.seed, user id)`, so the generator can
//!
//! * produce users in any chunking and get bit-identical output
//!   ([`StreamWorld::build_chunked`] with any chunk size equals
//!   [`StreamWorld::build`]),
//! * write a CSR file without ever holding the user-major pair list in
//!   memory ([`StreamWorld::write_csr`] streams the user→item array
//!   straight to disk and keeps only the `u32` transpose slab), and
//! * answer "what are user u's items?" on demand
//!   ([`StreamWorld::items_for_user`]) without building anything.
//!
//! # World model
//!
//! For user `u` (everything seeded by `splitmix64` hashes of
//! `(seed, u)` — no global RNG stream, hence chunk invariance):
//!
//! 1. **Activity**: a heavy-tailed degree multiplier `(1−β)·x^(−β)`
//!    (mean 1 over `x ∈ (0,1)`, `β = user_activity_exponent`) scales
//!    `avg_degree` into this user's target degree.
//! 2. **Popularity**: `candidate_factor × degree` candidate *ranks* are
//!    drawn from a Zipf(`popularity_exponent`) distribution by inverse
//!    CDF; a seed-derived affine bijection `rank ↦ (a·rank + b) mod
//!    n_items` (with `gcd(a, n_items) = 1`) maps popularity ranks to item
//!    ids, so "popular" items are scattered over the id space instead of
//!    clustered at 0.
//! 3. **Preference**: candidates are scored `affinity_weight ·
//!    ⟨f_u, f_i⟩ + Gumbel noise` against planted Gaussian latent factors
//!    and the top `degree` distinct items win — Gumbel-top-k, the same
//!    selection rule as the in-memory generator.
//!
//! The planted structure is what gives trained models a signal to find;
//! the Zipf prior is what gives samplers and the popularity baseline
//! something realistic to exploit.

use crate::storage;
use crate::{DataError, Interactions, ItemId, UserId};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Shape and distribution parameters of a streamed synthetic world.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of items.
    pub n_items: u32,
    /// Mean observed items per user (before the per-user activity tail).
    pub avg_degree: f64,
    /// Dimension of the planted latent preference structure.
    pub latent_dim: usize,
    /// Weight of the planted affinity relative to the Gumbel noise;
    /// higher = easier world.
    pub affinity_weight: f32,
    /// Zipf exponent of item popularity (`s` in `p(rank) ∝ rank^(−s)`).
    pub popularity_exponent: f64,
    /// Tail exponent of per-user activity, clamped to `[0, 0.95)`; 0 means
    /// every user targets `avg_degree`.
    pub user_activity_exponent: f64,
    /// Hard cap on any single user's degree.
    pub max_degree: usize,
    /// Candidates drawn per selected item; higher = popularity matters
    /// more relative to preference.
    pub candidate_factor: usize,
    /// Master seed; two worlds with equal configs are bit-identical.
    pub seed: u64,
}

impl StreamConfig {
    /// A world of the given shape with the default distribution knobs
    /// (latent dim 8, Zipf 1.05 popularity, mild activity tail).
    pub fn scale(n_users: u32, n_items: u32, avg_degree: f64, seed: u64) -> Self {
        StreamConfig {
            n_users,
            n_items,
            avg_degree,
            latent_dim: 8,
            affinity_weight: 1.5,
            popularity_exponent: 1.05,
            user_activity_exponent: 0.4,
            max_degree: 512,
            candidate_factor: 4,
            seed,
        }
    }
}

// Distinct hash domains so the degree/candidate stream, the user factors
// and the item factors never alias.
const DOMAIN_USER: u64 = 0x55AA_33CC_0F0F_F0F0;
const DOMAIN_USER_FACTOR: u64 = 0x1234_5678_9ABC_DEF0;
const DOMAIN_ITEM_FACTOR: u64 = 0x0FED_CBA9_8765_4321;
const DOMAIN_PERM: u64 = 0xA5A5_A5A5_5A5A_5A5A;

/// One `splitmix64` output step (Steele et al.); a high-quality 64-bit
/// mixer, used both as a stateless hash and as the per-entity RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless combine of a seed, a domain tag and an entity id.
fn hash3(seed: u64, domain: u64, id: u64) -> u64 {
    let mut s = seed ^ domain;
    let a = splitmix64(&mut s);
    let mut s2 = a ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s2)
}

/// A tiny deterministic RNG stream over `splitmix64`.
struct Mix(u64);

impl Mix {
    fn new(seed: u64) -> Self {
        Mix(seed)
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1)` — safe to take logarithms of.
    fn next_open_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box–Muller.
    fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_open_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Standard Gumbel (for Gumbel-top-k selection).
    fn next_gumbel(&mut self) -> f64 {
        -(-self.next_open_f64().ln()).ln()
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Zipf(`s`) rank in `0..m` by inverse CDF of the continuous density
/// `∝ x^(−s)` on `[1, m+1]`.
fn zipf_rank(u: f64, m: u64, s: f64) -> u64 {
    let mf = m as f64;
    let x = if (s - 1.0).abs() < 1e-9 {
        (mf + 1.0).powf(u)
    } else {
        let t = (mf + 1.0).powf(1.0 - s);
        (1.0 + u * (t - 1.0)).powf(1.0 / (1.0 - s))
    };
    (x.floor() as u64).clamp(1, m) - 1
}

/// A fully specified streamed world: config plus the derived rank→item
/// permutation and the planted item factor table.
///
/// Construction precomputes the `n_items × latent_dim` item factor table
/// (the only O(n_items) memory the generator holds); everything per-user
/// is derived on demand.
#[derive(Clone, Debug)]
pub struct StreamWorld {
    cfg: StreamConfig,
    perm_a: u64,
    perm_b: u64,
    item_factors: Vec<f32>,
}

/// Reusable per-call buffers for user generation.
struct Scratch {
    user_factor: Vec<f32>,
    candidates: Vec<(u32, f64)>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            user_factor: Vec::new(),
            candidates: Vec::new(),
        }
    }
}

impl StreamWorld {
    /// Validates the config and derives the world.
    ///
    /// # Errors
    /// [`DataError::Empty`] if the id space is degenerate or the target
    /// degree is not positive.
    pub fn new(cfg: StreamConfig) -> Result<StreamWorld, DataError> {
        if cfg.n_users == 0 || cfg.n_items == 0 || cfg.avg_degree < 1.0 || cfg.latent_dim == 0 {
            return Err(DataError::Empty);
        }
        let m = cfg.n_items as u64;
        let mut rng = Mix::new(hash3(cfg.seed, DOMAIN_PERM, 0));
        let (perm_a, perm_b) = if m == 1 {
            (0, 0)
        } else {
            let mut a = rng.next_u64() % (m - 1) + 1;
            while gcd(a, m) != 1 {
                a = a % (m - 1) + 1;
            }
            (a, rng.next_u64() % m)
        };
        let d = cfg.latent_dim;
        let mut item_factors = Vec::with_capacity(cfg.n_items as usize * d);
        for i in 0..cfg.n_items as u64 {
            let mut f = Mix::new(hash3(cfg.seed, DOMAIN_ITEM_FACTOR, i));
            for _ in 0..d {
                item_factors.push(f.next_gaussian() as f32);
            }
        }
        Ok(StreamWorld {
            cfg,
            perm_a,
            perm_b,
            item_factors,
        })
    }

    /// The config this world was derived from.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Expected total pair count (`n_users × avg_degree`); the exact count
    /// differs slightly through rounding, caps and candidate collisions.
    pub fn expected_pairs(&self) -> u64 {
        (self.cfg.n_users as f64 * self.cfg.avg_degree) as u64
    }

    /// Writes user `u`'s observed items into `out` (cleared first), sorted
    /// strictly ascending — a pure function of `(config, u)`.
    ///
    /// # Panics
    /// Panics if `u` is outside the configured user space.
    pub fn items_for_user(&self, u: UserId, out: &mut Vec<ItemId>) {
        assert!(u.0 < self.cfg.n_users, "user id out of range");
        let mut scratch = Scratch::new();
        self.fill_user(u.0, &mut scratch, out);
    }

    /// The generation kernel behind every build path.
    fn fill_user(&self, u: u32, scratch: &mut Scratch, out: &mut Vec<ItemId>) {
        out.clear();
        let cfg = &self.cfg;
        let mut rng = Mix::new(hash3(cfg.seed, DOMAIN_USER, u as u64));

        // Target degree: heavy-tailed multiplier with mean 1.
        let beta = cfg.user_activity_exponent.clamp(0.0, 0.95);
        let mult = (1.0 - beta) * rng.next_open_f64().powf(-beta);
        let cap = cfg.max_degree.clamp(1, cfg.n_items as usize);
        let deg = ((cfg.avg_degree * mult).round() as usize).clamp(1, cap);

        // Planted user preference vector.
        let d = cfg.latent_dim;
        let fu = &mut scratch.user_factor;
        fu.clear();
        let mut frng = Mix::new(hash3(cfg.seed, DOMAIN_USER_FACTOR, u as u64));
        for _ in 0..d {
            fu.push(frng.next_gaussian() as f32);
        }

        // Zipf-popular candidates, scored by affinity + Gumbel noise.
        let m = cfg.n_items as u64;
        let n_cand = (deg * cfg.candidate_factor.max(1)).min(cfg.n_items as usize);
        let cand = &mut scratch.candidates;
        cand.clear();
        for _ in 0..n_cand {
            let rank = zipf_rank(rng.next_f64(), m, cfg.popularity_exponent);
            let item = if m == 1 {
                0
            } else {
                (self.perm_a.wrapping_mul(rank).wrapping_add(self.perm_b) % m) as u32
            };
            let base = item as usize * d;
            let mut dot = 0.0f32;
            for (a, b) in fu.iter().zip(&self.item_factors[base..base + d]) {
                dot += a * b;
            }
            let score = (cfg.affinity_weight * dot) as f64 + rng.next_gumbel();
            cand.push((item, score));
        }

        // Distinct candidates only, keeping each item's best draw…
        cand.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.total_cmp(&a.1)));
        cand.dedup_by_key(|c| c.0);
        // …then the top `deg` by score, emitted in id order for CSR.
        if cand.len() > deg {
            cand.select_nth_unstable_by(deg - 1, |a, b| b.1.total_cmp(&a.1));
            cand.truncate(deg);
        }
        cand.sort_unstable_by_key(|c| c.0);
        out.extend(cand.iter().map(|c| ItemId(c.0)));
    }

    /// Builds the full in-memory [`Interactions`] with the default chunk
    /// size. Equivalent to [`build_chunked`](StreamWorld::build_chunked)
    /// with any chunk size — chunking never changes the result.
    pub fn build(&self) -> Interactions {
        self.build_chunked(1 << 16)
    }

    /// Builds the matrix processing `chunk` users at a time.
    ///
    /// Unlike the dense generator there is no COO pair list and no global
    /// sort: users stream out in id order directly into the CSR arrays,
    /// and the transpose is a counting scatter over the finished user-major
    /// array. Peak memory is the output CSR itself plus one chunk of
    /// scratch.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn build_chunked(&self, chunk: usize) -> Interactions {
        assert!(chunk > 0, "chunk size must be positive");
        let nu = self.cfg.n_users as usize;
        let ni = self.cfg.n_items as usize;

        let mut user_ptr = Vec::with_capacity(nu + 1);
        user_ptr.push(0usize);
        let mut user_items: Vec<ItemId> = Vec::with_capacity(self.expected_pairs() as usize);
        let mut item_counts = vec![0usize; ni];

        let mut scratch = Scratch::new();
        let mut row: Vec<ItemId> = Vec::new();
        for chunk_start in (0..nu).step_by(chunk) {
            let chunk_end = (chunk_start + chunk).min(nu);
            for u in chunk_start..chunk_end {
                self.fill_user(u as u32, &mut scratch, &mut row);
                for &i in &row {
                    item_counts[i.index()] += 1;
                }
                user_items.extend_from_slice(&row);
                user_ptr.push(user_items.len());
            }
        }

        // Transpose: prefix-sum the counts, then scatter users in id order
        // (which leaves every per-item list already sorted).
        let mut item_ptr = Vec::with_capacity(ni + 1);
        item_ptr.push(0usize);
        for c in &item_counts {
            item_ptr.push(item_ptr.last().unwrap() + c);
        }
        let mut cursor: Vec<usize> = item_ptr[..ni].to_vec();
        let mut item_users = vec![UserId(0); user_items.len()];
        for u in 0..nu {
            for &i in &user_items[user_ptr[u]..user_ptr[u + 1]] {
                item_users[cursor[i.index()]] = UserId(u as u32);
                cursor[i.index()] += 1;
            }
        }

        Interactions {
            n_users: self.cfg.n_users,
            n_items: self.cfg.n_items,
            user_ptr: user_ptr.into(),
            user_items: user_items.into(),
            item_ptr: item_ptr.into(),
            item_users: item_users.into(),
        }
    }

    /// Streams the world straight into a CSR file (the format of
    /// [`Interactions::open_csr`]) without building the matrix in memory.
    ///
    /// Two generation passes: the first counts per-user and per-item
    /// degrees (fixing every file offset), the second streams the
    /// user-major item array to disk as it is generated and scatters the
    /// transpose into a `u32` slab — the only pair-sized allocation. Peak
    /// memory is roughly *half* of [`build`](StreamWorld::build) plus the
    /// offset arrays, and the written file reopens with
    /// [`Interactions::open_csr`] at near-zero heap cost.
    ///
    /// Returns the number of pairs written.
    ///
    /// # Errors
    /// Any I/O error from creating or writing the file.
    pub fn write_csr(&self, path: &Path) -> Result<u64, DataError> {
        let nu = self.cfg.n_users as usize;
        let ni = self.cfg.n_items as usize;
        let mut scratch = Scratch::new();
        let mut row: Vec<ItemId> = Vec::new();

        // Pass 1: degrees only → both offset arrays.
        let mut user_ptr = Vec::with_capacity(nu + 1);
        user_ptr.push(0usize);
        let mut item_counts = vec![0usize; ni];
        for u in 0..nu {
            self.fill_user(u as u32, &mut scratch, &mut row);
            for &i in &row {
                item_counts[i.index()] += 1;
            }
            user_ptr.push(user_ptr.last().unwrap() + row.len());
        }
        let n_pairs = *user_ptr.last().unwrap();
        let mut item_ptr = Vec::with_capacity(ni + 1);
        item_ptr.push(0usize);
        for c in &item_counts {
            item_ptr.push(item_ptr.last().unwrap() + c);
        }
        drop(item_counts);

        let mut w = BufWriter::new(std::fs::File::create(path)?);
        storage::write_prefix(
            &mut w,
            self.cfg.n_users as u64,
            self.cfg.n_items as u64,
            &user_ptr,
            &item_ptr,
        )?;
        drop(user_ptr);

        // Pass 2: regenerate, stream user_items to disk, scatter the
        // transpose into the slab.
        let mut cursor: Vec<usize> = item_ptr[..ni].to_vec();
        drop(item_ptr);
        let mut slab = vec![0u32; n_pairs];
        for u in 0..nu {
            self.fill_user(u as u32, &mut scratch, &mut row);
            for &i in &row {
                w.write_all(&i.0.to_le_bytes())?;
                slab[cursor[i.index()]] = u as u32;
                cursor[i.index()] += 1;
            }
        }
        storage::write_u32s(&mut w, &slab)?;
        w.flush()?;
        Ok(n_pairs as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StreamConfig {
        StreamConfig {
            max_degree: 16,
            ..StreamConfig::scale(50, 80, 5.0, 7)
        }
    }

    #[test]
    fn rows_are_sorted_distinct_and_in_range() {
        let w = StreamWorld::new(tiny()).unwrap();
        let mut row = Vec::new();
        for u in 0..50 {
            w.items_for_user(UserId(u), &mut row);
            assert!(!row.is_empty());
            assert!(row.windows(2).all(|p| p[0] < p[1]), "user {u} not sorted");
            assert!(row.iter().all(|i| i.0 < 80));
        }
    }

    #[test]
    fn build_matches_items_for_user() {
        let w = StreamWorld::new(tiny()).unwrap();
        let d = w.build();
        let mut row = Vec::new();
        for u in d.users() {
            w.items_for_user(u, &mut row);
            assert_eq!(d.items_of(u), &row[..]);
        }
        d.validate_csr().unwrap();
    }

    #[test]
    fn mean_degree_tracks_config() {
        let cfg = StreamConfig::scale(2_000, 500, 6.0, 3);
        let d = StreamWorld::new(cfg).unwrap().build();
        let mean = d.n_pairs() as f64 / d.n_users() as f64;
        assert!(
            (mean - 6.0).abs() < 1.0,
            "mean degree {mean} far from target 6"
        );
    }

    #[test]
    fn popularity_is_long_tailed() {
        let cfg = StreamConfig::scale(3_000, 400, 8.0, 11);
        let d = StreamWorld::new(cfg).unwrap().build();
        let mut pop = d.item_popularity();
        pop.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = pop.iter().sum();
        let top_decile: usize = pop[..40].iter().sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "top 10% of items hold only {top_decile}/{total} pairs"
        );
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for cfg in [
            StreamConfig::scale(0, 10, 3.0, 1),
            StreamConfig::scale(10, 0, 3.0, 1),
            StreamConfig::scale(10, 10, 0.0, 1),
            StreamConfig {
                latent_dim: 0,
                ..StreamConfig::scale(10, 10, 3.0, 1)
            },
        ] {
            assert!(matches!(StreamWorld::new(cfg), Err(DataError::Empty)));
        }
    }

    #[test]
    fn single_item_world_works() {
        let cfg = StreamConfig::scale(5, 1, 1.0, 9);
        let d = StreamWorld::new(cfg).unwrap().build();
        assert_eq!(d.n_pairs(), 5);
        assert!(d.users().all(|u| d.items_of(u) == [ItemId(0)]));
    }
}
