//! Writing interaction sets back to disk, and down-sampling utilities.
//!
//! Exports use the same CSV shape the loader reads (`user,item,rating`
//! with a constant positive rating), so a dataset round-trips through
//! [`crate::loader::load_ratings_reader`] — handy for handing synthetic
//! worlds to other tooling or for caching expensive generations.

use crate::{DataError, Interactions, ItemId, UserId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::io::Write;

/// Writes `data` as `user,item,rating` CSV (header included, rating fixed
/// at 5 so the paper's `> 3` binarization keeps every pair on reload).
pub fn write_csv<W: Write>(data: &Interactions, mut w: W) -> std::io::Result<()> {
    writeln!(w, "userId,itemId,rating")?;
    for (u, i) in data.pairs() {
        writeln!(w, "{},{},5", u.0, i.0)?;
    }
    Ok(())
}

/// Keeps a uniform random `fraction` of the observed pairs (id space
/// unchanged). Useful for learning-curve experiments.
///
/// # Errors
/// [`DataError::BadFraction`] unless `0 < fraction <= 1`;
/// [`DataError::Empty`] if nothing survives.
pub fn subsample_pairs<R: Rng>(
    data: &Interactions,
    fraction: f64,
    rng: &mut R,
) -> Result<Interactions, DataError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(DataError::BadFraction(fraction));
    }
    let mut pairs = data.pairs_vec();
    pairs.shuffle(rng);
    let keep = ((pairs.len() as f64) * fraction).round().max(1.0) as usize;
    pairs.truncate(keep.min(pairs.len()));
    if pairs.is_empty() {
        return Err(DataError::Empty);
    }
    let mut b = crate::InteractionsBuilder::with_capacity(data.n_users(), data.n_items(), keep);
    for (u, i) in pairs {
        b.push(u, i)?;
    }
    b.build()
}

/// Restricts the dataset to the `n_users`/`n_items` most active users and
/// most popular items, re-mapping ids densely. The standard "core" shrink
/// used to scale public datasets down.
///
/// Returns the shrunken interactions together with the kept original ids
/// (`users[new] = old`, `items[new] = old`).
pub fn head_subset(
    data: &Interactions,
    n_users: u32,
    n_items: u32,
) -> Result<(Interactions, Vec<UserId>, Vec<ItemId>), DataError> {
    if n_users == 0 || n_items == 0 {
        return Err(DataError::Empty);
    }
    let mut users: Vec<UserId> = data.users().collect();
    users.sort_by_key(|&u| std::cmp::Reverse(data.degree_of_user(u)));
    users.truncate(n_users as usize);
    users.sort_unstable();

    let mut items: Vec<ItemId> = data.items().collect();
    items.sort_by_key(|&i| std::cmp::Reverse(data.degree_of_item(i)));
    items.truncate(n_items as usize);
    items.sort_unstable();

    let mut b = crate::InteractionsBuilder::new(users.len() as u32, items.len() as u32);
    for (new_u, &u) in users.iter().enumerate() {
        for &i in data.items_of(u) {
            if let Ok(new_i) = items.binary_search(&i) {
                b.push(UserId(new_u as u32), ItemId(new_i as u32))?;
            }
        }
    }
    Ok((b.build()?, users, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load_ratings_reader, Separator};
    use crate::InteractionsBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn data() -> Interactions {
        let mut b = InteractionsBuilder::new(4, 5);
        for (u, i) in [(0, 0), (0, 1), (0, 2), (1, 0), (2, 0), (2, 4), (3, 3)] {
            b.push(UserId(u), ItemId(i)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn csv_round_trips_through_the_loader() {
        let d = data();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let loaded =
            load_ratings_reader(std::io::Cursor::new(buf), Separator::Comma, 3.0).unwrap();
        assert_eq!(loaded.interactions.n_pairs(), d.n_pairs());
        // Raw ids are the original dense ids (as strings).
        let u0 = loaded.ids.dense_user("0").unwrap();
        assert_eq!(
            loaded.interactions.degree_of_user(u0),
            d.degree_of_user(UserId(0))
        );
    }

    #[test]
    fn subsample_keeps_requested_fraction() {
        let d = data();
        let mut rng = SmallRng::seed_from_u64(1);
        let half = subsample_pairs(&d, 0.5, &mut rng).unwrap();
        assert!((half.n_pairs() as i64 - 4).abs() <= 1, "{}", half.n_pairs());
        assert_eq!(half.n_users(), d.n_users());
        assert_eq!(half.n_items(), d.n_items());
        // Every kept pair existed before.
        for (u, i) in half.pairs() {
            assert!(d.contains(u, i));
        }
    }

    #[test]
    fn subsample_full_fraction_is_identity() {
        let d = data();
        let mut rng = SmallRng::seed_from_u64(2);
        let all = subsample_pairs(&d, 1.0, &mut rng).unwrap();
        assert_eq!(all.pairs_vec(), d.pairs_vec());
    }

    #[test]
    fn subsample_rejects_bad_fraction() {
        let d = data();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(subsample_pairs(&d, 0.0, &mut rng).is_err());
        assert!(subsample_pairs(&d, 1.5, &mut rng).is_err());
    }

    #[test]
    fn head_subset_keeps_most_active() {
        let d = data();
        // Top-2 users by degree: u0 (3), u2 (2). Top-3 items: i0 (3), then
        // ties among {1, 2, 3, 4} broken by the sort's ordering.
        let (sub, users, items) = head_subset(&d, 2, 3).unwrap();
        assert_eq!(users.len(), 2);
        assert!(users.contains(&UserId(0)));
        assert!(users.contains(&UserId(2)));
        assert_eq!(items.len(), 3);
        assert!(items.contains(&ItemId(0)));
        assert!(sub.n_pairs() >= 2);
        // Dense remap: ids are within the new ranges.
        for (u, i) in sub.pairs() {
            assert!(u.0 < 2 && i.0 < 3);
        }
    }

    #[test]
    fn head_subset_rejects_zero() {
        let d = data();
        assert!(head_subset(&d, 0, 3).is_err());
    }
}
