//! File-backed CSR storage: write an [`Interactions`] once, reopen it
//! read-only through `mmap`.
//!
//! Million-scale synthetic worlds (see [`crate::stream`]) no longer fit the
//! "hold two index directions in `Vec`s" model comfortably: a 10M-pair
//! world costs ~100 MB of heap for the CSR alone, paid again by every
//! process that touches it. The `.csr` file format stores exactly those
//! four arrays, so reopening a world is one `mmap` call — the kernel pages
//! the arrays in on demand and the process's heap stays at the size of the
//! `Interactions` struct itself.
//!
//! # File format (version 1, all little-endian)
//!
//! | offset | bytes | content |
//! |---|---|---|
//! | 0 | 8 | magic `b"CLAPFCSR"` |
//! | 8 | 4 | version (`u32`, = 1) |
//! | 12 | 4 | reserved (zero) |
//! | 16 | 8 | `n_users` (`u64`) |
//! | 24 | 8 | `n_items` (`u64`) |
//! | 32 | 8 | `n_pairs` (`u64`) |
//! | 40 | 8·(n_users+1) | `user_ptr` (`u64`) |
//! | … | 8·(n_items+1) | `item_ptr` (`u64`) |
//! | … | 4·n_pairs | `user_items` (`u32`) |
//! | … | 4·n_pairs | `item_users` (`u32`) |
//!
//! Every array offset is a multiple of its element alignment (the header is
//! 40 bytes and mappings are page-aligned), which the mapped-slice casts
//! below rely on.
//!
//! # Validation policy
//!
//! [`Interactions::open_csr`] validates the header and the exact file size
//! only. Deep validation (monotone offset arrays, ids in range, sorted
//! rows) would fault every page of the mapping into memory, which defeats
//! the point of mapping a 10M-pair world lazily — so it is the separate,
//! opt-in [`Interactions::validate_csr`]. A corrupt file that passes the
//! shallow check cannot cause memory unsafety: all accesses go through
//! safe slice indexing and at worst panic on an out-of-range offset.
//!
//! # Portability
//!
//! The mmap path is gated on 64-bit little-endian Unix (where `usize`
//! matches the stored `u64` offsets and the raw `mmap(2)` declaration is
//! valid); everywhere else `open_csr` transparently falls back to
//! [`Interactions::load_csr_heap`], which reads the same format into heap
//! `Vec`s.

// The one unsafe surface of this crate: the mmap(2) FFI and the cast from
// mapped bytes to typed slices. Everything else in clapf-data stays safe.
#![allow(unsafe_code)]

use crate::{DataError, Interactions, ItemId, UserId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a CLAPF CSR file.
pub const CSR_MAGIC: [u8; 8] = *b"CLAPFCSR";
/// Current CSR file format version.
pub const CSR_VERSION: u32 = 1;
const HEADER_BYTES: u64 = 40;

/// `cfg` predicate for the mmap fast path, spelled once.
macro_rules! mmap_supported {
    () => {
        cfg!(all(unix, target_pointer_width = "64", target_endian = "little"))
    };
}

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
mod mapped {
    use std::os::raw::{c_int, c_void};
    use std::sync::Arc;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// One read-only, privately mapped file region, unmapped on drop.
    pub(super) struct MmapRegion {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the region is mapped PROT_READ/MAP_PRIVATE and never written
    // through; shared immutable access from any thread is fine, and the
    // munmap in Drop runs exactly once (Arc guards the region).
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Maps `len` bytes of `file` read-only. `len` must not exceed the
        /// file size (the caller checks the size against the header).
        pub(super) fn map(file: &std::fs::File, len: usize) -> std::io::Result<Arc<MmapRegion>> {
            use std::os::unix::io::AsRawFd;
            debug_assert!(len > 0);
            // SAFETY: a fresh anonymous-address read-only mapping of an open
            // fd; the kernel validates the arguments and MAP_FAILED (-1) is
            // checked below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Arc::new(MmapRegion {
                ptr: ptr as *const u8,
                len,
            }))
        }

        /// Reinterprets `count` elements of `T` starting at byte `offset`.
        ///
        /// # Safety contract (checked by the caller)
        /// `offset` must be a multiple of `align_of::<T>()` (the format
        /// guarantees this), `offset + count·size_of::<T>()` must lie inside
        /// the mapping (the file-size check guarantees this), and `T` must
        /// be valid for any bit pattern (`u64`/`usize` and the
        /// `repr(transparent)` `u32` id newtypes are).
        pub(super) fn slice_at<T>(self: &Arc<Self>, offset: usize, count: usize) -> super::Buf<T> {
            assert!(offset % std::mem::align_of::<T>() == 0, "misaligned CSR array");
            assert!(
                offset + count * std::mem::size_of::<T>() <= self.len,
                "CSR array extends past the mapping"
            );
            super::Buf {
                inner: super::BufInner::Mapped {
                    region: Arc::clone(self),
                    // SAFETY: in-bounds by the assertion above.
                    ptr: unsafe { self.ptr.add(offset) } as *const T,
                    len: count,
                },
            }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

/// A read-only array that is either owned on the heap or borrowed from a
/// shared mapped file region. Dereferences to `[T]`, so the rest of the
/// crate is oblivious to the backing.
pub(crate) struct Buf<T> {
    inner: BufInner<T>,
}

enum BufInner<T> {
    Heap(Vec<T>),
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    Mapped {
        /// Keeps the mapping alive as long as any slice into it.
        region: std::sync::Arc<mapped::MmapRegion>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: Heap is a Vec (Send+Sync for Send+Sync T); Mapped is an immutable
// view into a Send+Sync region kept alive by the Arc.
unsafe impl<T: Send + Sync> Send for Buf<T> {}
unsafe impl<T: Send + Sync> Sync for Buf<T> {}

impl<T> std::ops::Deref for Buf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match &self.inner {
            BufInner::Heap(v) => v,
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            BufInner::Mapped { ptr, len, .. } => {
                // SAFETY: ptr/len were validated against the mapping bounds
                // at construction and the region outlives self.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }
}

impl<T> From<Vec<T>> for Buf<T> {
    fn from(v: Vec<T>) -> Self {
        Buf {
            inner: BufInner::Heap(v),
        }
    }
}

impl<T: Clone> Clone for Buf<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            BufInner::Heap(v) => Buf {
                inner: BufInner::Heap(v.clone()),
            },
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            BufInner::Mapped { region, ptr, len } => Buf {
                inner: BufInner::Mapped {
                    region: std::sync::Arc::clone(region),
                    ptr: *ptr,
                    len: *len,
                },
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Buf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buf")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl<T> Buf<T> {
    /// Whether this array borrows a mapped file rather than owning heap.
    pub(crate) fn is_mapped(&self) -> bool {
        match &self.inner {
            BufInner::Heap(_) => false,
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            BufInner::Mapped { .. } => true,
        }
    }
}

fn format_err(msg: impl Into<String>) -> DataError {
    DataError::Format(msg.into())
}

/// Byte size of a version-1 CSR file with the given shape.
fn file_size(n_users: u64, n_items: u64, n_pairs: u64) -> u64 {
    HEADER_BYTES + 8 * (n_users + 1) + 8 * (n_items + 1) + 4 * n_pairs + 4 * n_pairs
}

/// The four array offsets of a version-1 file, in layout order.
fn layout(n_users: u64, n_items: u64, n_pairs: u64) -> [(u64, u64); 4] {
    let user_ptr_at = HEADER_BYTES;
    let item_ptr_at = user_ptr_at + 8 * (n_users + 1);
    let user_items_at = item_ptr_at + 8 * (n_items + 1);
    let item_users_at = user_items_at + 4 * n_pairs;
    [
        (user_ptr_at, n_users + 1),
        (item_ptr_at, n_items + 1),
        (user_items_at, n_pairs),
        (item_users_at, n_pairs),
    ]
}

/// Writes one CSR header.
fn write_header<W: Write>(
    w: &mut W,
    n_users: u64,
    n_items: u64,
    n_pairs: u64,
) -> std::io::Result<()> {
    w.write_all(&CSR_MAGIC)?;
    w.write_all(&CSR_VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&n_users.to_le_bytes())?;
    w.write_all(&n_items.to_le_bytes())?;
    w.write_all(&n_pairs.to_le_bytes())
}

/// Reads and validates a CSR header, returning `(n_users, n_items, n_pairs)`.
fn read_header(bytes: &[u8; 40]) -> Result<(u64, u64, u64), DataError> {
    if bytes[..8] != CSR_MAGIC {
        return Err(format_err("wrong magic (not a CLAPF CSR file)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CSR_VERSION {
        return Err(format_err(format!(
            "unsupported version {version} (this build reads {CSR_VERSION})"
        )));
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let (n_users, n_items, n_pairs) = (word(16), word(24), word(32));
    if n_users > u32::MAX as u64 || n_items > u32::MAX as u64 {
        return Err(format_err("user/item count exceeds the u32 id space"));
    }
    Ok((n_users, n_items, n_pairs))
}

/// Streams one `u64` array as little-endian bytes.
pub(crate) fn write_u64s<W: Write>(w: &mut W, xs: &[usize]) -> std::io::Result<()> {
    for &x in xs {
        w.write_all(&(x as u64).to_le_bytes())?;
    }
    Ok(())
}

/// Streams one `u32` array as little-endian bytes.
pub(crate) fn write_u32s<W: Write>(w: &mut W, xs: &[u32]) -> std::io::Result<()> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Writes the header and both offset arrays — the common prefix of the
/// in-memory and the streaming writer. Returns the writer positioned at the
/// `user_items` array.
pub(crate) fn write_prefix<W: Write>(
    w: &mut W,
    n_users: u64,
    n_items: u64,
    user_ptr: &[usize],
    item_ptr: &[usize],
) -> std::io::Result<()> {
    let n_pairs = *user_ptr.last().expect("user_ptr is never empty") as u64;
    write_header(w, n_users, n_items, n_pairs)?;
    write_u64s(w, user_ptr)?;
    write_u64s(w, item_ptr)
}

fn read_u64s<R: Read>(r: &mut R, count: usize) -> std::io::Result<Vec<usize>> {
    let mut out = Vec::with_capacity(count);
    let mut buf = [0u8; 8];
    for _ in 0..count {
        r.read_exact(&mut buf)?;
        out.push(u64::from_le_bytes(buf) as usize);
    }
    Ok(out)
}

fn read_u32s<R: Read>(r: &mut R, count: usize) -> std::io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    let mut buf = [0u8; 4];
    for _ in 0..count {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

impl Interactions {
    /// Serializes this matrix to the binary CSR format at `path`.
    ///
    /// The written file reopens with [`open_csr`](Interactions::open_csr)
    /// (zero-copy where supported) or
    /// [`load_csr_heap`](Interactions::load_csr_heap) (everywhere).
    ///
    /// # Errors
    /// Any I/O error from creating or writing the file.
    pub fn write_csr(&self, path: &Path) -> Result<(), DataError> {
        let mut w = BufWriter::new(File::create(path)?);
        write_prefix(
            &mut w,
            self.n_users as u64,
            self.n_items as u64,
            &self.user_ptr,
            &self.item_ptr,
        )?;
        for &i in self.user_items.iter() {
            w.write_all(&i.0.to_le_bytes())?;
        }
        for &u in self.item_users.iter() {
            w.write_all(&u.0.to_le_bytes())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Opens a CSR file written by [`write_csr`](Interactions::write_csr)
    /// or [`crate::stream::StreamWorld::write_csr`].
    ///
    /// On 64-bit little-endian Unix the four arrays are memory-mapped
    /// read-only: opening a 10M-pair world costs the header read plus one
    /// `mmap`, and pages fault in only as they are touched. Elsewhere this
    /// falls back to [`load_csr_heap`](Interactions::load_csr_heap).
    ///
    /// Validation is shallow (header + exact file size); see the module
    /// docs for the policy and [`validate_csr`](Interactions::validate_csr)
    /// for the deep scan.
    ///
    /// # Errors
    /// [`DataError::Format`] on a malformed header or wrong file size;
    /// [`DataError::Io`] on any I/O failure.
    pub fn open_csr(path: &Path) -> Result<Interactions, DataError> {
        if !mmap_supported!() {
            return Self::load_csr_heap(path);
        }
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        {
            let mut file = File::open(path)?;
            let mut header = [0u8; 40];
            file.read_exact(&mut header)?;
            let (n_users, n_items, n_pairs) = read_header(&header)?;
            let expected = file_size(n_users, n_items, n_pairs);
            let actual = file.metadata()?.len();
            if actual != expected {
                return Err(format_err(format!(
                    "file is {actual} bytes, header implies {expected}"
                )));
            }
            let region = mapped::MmapRegion::map(&file, expected as usize)?;
            let [up, ip, ui, iu] = layout(n_users, n_items, n_pairs);
            Ok(Interactions {
                n_users: n_users as u32,
                n_items: n_items as u32,
                user_ptr: region.slice_at::<usize>(up.0 as usize, up.1 as usize),
                item_ptr: region.slice_at::<usize>(ip.0 as usize, ip.1 as usize),
                // SAFETY of the cast: UserId/ItemId are repr(transparent)
                // over u32, so a u32 array reinterprets as an id array.
                user_items: region.slice_at::<ItemId>(ui.0 as usize, ui.1 as usize),
                item_users: region.slice_at::<UserId>(iu.0 as usize, iu.1 as usize),
            })
        }
        #[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
        unreachable!("mmap_supported! gate above")
    }

    /// Reads a CSR file fully into heap `Vec`s — the portable loader, also
    /// the reference the mmap tests compare against.
    ///
    /// # Errors
    /// As [`open_csr`](Interactions::open_csr).
    pub fn load_csr_heap(path: &Path) -> Result<Interactions, DataError> {
        let mut r = BufReader::new(File::open(path)?);
        let mut header = [0u8; 40];
        r.read_exact(&mut header)?;
        let (n_users, n_items, n_pairs) = read_header(&header)?;
        let user_ptr = read_u64s(&mut r, n_users as usize + 1)?;
        let item_ptr = read_u64s(&mut r, n_items as usize + 1)?;
        let user_items: Vec<ItemId> = read_u32s(&mut r, n_pairs as usize)?
            .into_iter()
            .map(ItemId)
            .collect();
        let item_users: Vec<UserId> = read_u32s(&mut r, n_pairs as usize)?
            .into_iter()
            .map(UserId)
            .collect();
        let mut trailer = [0u8; 1];
        if r.read(&mut trailer)? != 0 {
            return Err(format_err("trailing bytes after the item_users array"));
        }
        let d = Interactions {
            n_users: n_users as u32,
            n_items: n_items as u32,
            user_ptr: user_ptr.into(),
            user_items: user_items.into(),
            item_ptr: item_ptr.into(),
            item_users: item_users.into(),
        };
        // The heap loader reads every byte anyway, so deep validation here
        // is free of extra page traffic — unlike the mapped path.
        d.validate_csr()?;
        Ok(d)
    }

    /// Whether this matrix borrows a mapped file (true) or owns its arrays
    /// on the heap (false).
    pub fn is_mapped(&self) -> bool {
        self.user_items.is_mapped()
    }

    /// Deep structural validation: monotone offset arrays ending at
    /// `n_pairs`, ids in range, per-row sorted strictly ascending, and the
    /// two directions containing the same number of pairs.
    ///
    /// On a mapped instance this faults every page of the file into memory
    /// — call it when integrity matters more than laziness.
    ///
    /// # Errors
    /// [`DataError::Format`] describing the first violation found.
    pub fn validate_csr(&self) -> Result<(), DataError> {
        let n_pairs = self.user_items.len();
        if self.item_users.len() != n_pairs {
            return Err(format_err("user→item and item→user pair counts differ"));
        }
        for (name, ptr, rows, ids) in [
            ("user_ptr", &self.user_ptr, self.n_users, self.n_items),
            ("item_ptr", &self.item_ptr, self.n_items, self.n_users),
        ] {
            if ptr.len() != rows as usize + 1 {
                return Err(format_err(format!("{name} has wrong length")));
            }
            if ptr[0] != 0 || ptr[rows as usize] != n_pairs {
                return Err(format_err(format!("{name} does not span 0..n_pairs")));
            }
            if ptr.windows(2).any(|w| w[0] > w[1]) {
                return Err(format_err(format!("{name} is not monotone")));
            }
            let flat: &[u32] = if name == "user_ptr" {
                item_ids_as_u32(&self.user_items)
            } else {
                user_ids_as_u32(&self.item_users)
            };
            for row in 0..rows as usize {
                let slice = &flat[ptr[row]..ptr[row + 1]];
                if slice.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format_err(format!(
                        "row {row} of {name} is not strictly sorted"
                    )));
                }
                if slice.last().is_some_and(|&last| last >= ids) {
                    return Err(format_err(format!("row {row} of {name} has an id out of range")));
                }
            }
        }
        Ok(())
    }
}

/// `&[ItemId] → &[u32]`. Sound because `ItemId` is `#[repr(transparent)]`
/// over `u32` (pinned in `ids.rs` for exactly this cast).
fn item_ids_as_u32(ids: &[ItemId]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(ids.as_ptr() as *const u32, ids.len()) }
}

/// `&[UserId] → &[u32]`; see [`item_ids_as_u32`].
fn user_ids_as_u32(users: &[UserId]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(users.as_ptr() as *const u32, users.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InteractionsBuilder;

    fn sample() -> Interactions {
        let mut b = InteractionsBuilder::new(4, 5);
        for (u, i) in [(0, 0), (0, 2), (1, 2), (1, 4), (2, 1), (3, 0), (3, 3)] {
            b.push(UserId(u), ItemId(i)).unwrap();
        }
        b.build().unwrap()
    }

    fn assert_same(a: &Interactions, b: &Interactions) {
        assert_eq!(a.n_users(), b.n_users());
        assert_eq!(a.n_items(), b.n_items());
        assert_eq!(a.n_pairs(), b.n_pairs());
        for u in a.users() {
            assert_eq!(a.items_of(u), b.items_of(u));
        }
        for i in a.items() {
            assert_eq!(a.users_of(i), b.users_of(i));
        }
    }

    #[test]
    fn round_trips_through_file_both_loaders() {
        let d = sample();
        let dir = std::env::temp_dir().join("clapf_storage_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csr");
        d.write_csr(&path).unwrap();

        let heap = Interactions::load_csr_heap(&path).unwrap();
        assert!(!heap.is_mapped());
        assert_same(&d, &heap);

        let opened = Interactions::open_csr(&path).unwrap();
        assert_eq!(opened.is_mapped(), mmap_supported!());
        assert_same(&d, &opened);
        opened.validate_csr().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_instance_clones_and_debugs() {
        let d = sample();
        let dir = std::env::temp_dir().join("clapf_storage_clone");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csr");
        d.write_csr(&path).unwrap();
        let opened = Interactions::open_csr(&path).unwrap();
        let cloned = opened.clone();
        drop(opened); // the clone must keep the mapping alive
        assert_same(&d, &cloned);
        let dbg = format!("{cloned:?}");
        assert!(dbg.contains("Interactions"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = std::env::temp_dir().join("clapf_storage_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csr");
        std::fs::write(&path, b"NOTACSRFILE-----________").unwrap();
        for res in [
            Interactions::open_csr(&path),
            Interactions::load_csr_heap(&path),
        ] {
            match res {
                Err(DataError::Format(msg)) => assert!(msg.contains("magic"), "{msg}"),
                Err(DataError::Io(_)) => {} // short file: read_exact fails first
                other => panic!("expected rejection, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let d = sample();
        let dir = std::env::temp_dir().join("clapf_storage_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.csr");
        d.write_csr(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(Interactions::open_csr(&path).is_err());
        assert!(Interactions::load_csr_heap(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let d = sample();
        let dir = std::env::temp_dir().join("clapf_storage_ver");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ver.csr");
        d.write_csr(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        match Interactions::open_csr(&path) {
            Err(DataError::Format(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected version rejection, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_offsets_fail_deep_validation() {
        let d = sample();
        let dir = std::env::temp_dir().join("clapf_storage_deep");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deep.csr");
        d.write_csr(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Break one user_ptr entry (first array after the 40-byte header,
        // entry 1) without changing the file size.
        bytes[48] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Shallow open succeeds (size and header are fine)…
        let opened = Interactions::open_csr(&path).unwrap();
        // …but the deep scan reports the corruption.
        assert!(opened.validate_csr().is_err());
        // And the heap loader (which always validates) rejects outright.
        assert!(Interactions::load_csr_heap(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_size_formula_matches_writer() {
        let d = sample();
        let dir = std::env::temp_dir().join("clapf_storage_size");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("size.csr");
        d.write_csr(&path).unwrap();
        let expected = file_size(
            d.n_users() as u64,
            d.n_items() as u64,
            d.n_pairs() as u64,
        );
        assert_eq!(std::fs::metadata(&path).unwrap().len(), expected);
        std::fs::remove_file(&path).ok();
    }
}
