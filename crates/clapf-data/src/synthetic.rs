//! Seeded synthetic implicit-feedback worlds.
//!
//! The paper evaluates on six rating datasets binarized to one-class
//! feedback (Table 1). Those dumps are not redistributable, so the harness
//! generates *structural equivalents*: each world plants
//!
//! 1. a **ground-truth low-rank preference field** `a_ui = U*_u · V*_i`
//!    (users genuinely differ, so personalized methods can beat popularity), and
//! 2. a **Zipf popularity prior** over items and a long-tail activity prior
//!    over users (the long-tail shape that motivates rank-aware sampling).
//!
//! A user's observed items are a Gumbel-top-`n_u` sample with weight
//! `popularity_i · exp(affinity · a_ui)`, i.e. an exact sample without
//! replacement from the corresponding softmax. Everything is driven by an
//! explicit RNG, so each named dataset is reproducible from a seed.
//!
//! The three "large" datasets (ML20M, Flixter, Netflix) are scaled down
//! (users, items and pairs by the same factor) so that the full Table 2 grid
//! runs on one machine; scaling all three quantities together preserves the
//! average user degree, which is what the methods' relative behaviour
//! depends on. The scale factor for each is recorded in its [`DatasetSpec`].

use crate::{DataError, Interactions, InteractionsBuilder, ItemId, UserId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of a synthetic implicit-feedback world.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of items.
    pub n_items: u32,
    /// Exact number of observed pairs to generate.
    pub target_pairs: usize,
    /// Rank of the planted preference field (small; 8 by default).
    pub latent_dim: usize,
    /// Strength of personal preference relative to global popularity.
    /// `0.0` yields a pure popularity world (PopRank is then optimal).
    pub affinity_weight: f64,
    /// Zipf exponent of item popularity (≈ 1.0 for real rating data).
    pub popularity_exponent: f64,
    /// Zipf exponent of user activity (how skewed the per-user degree is).
    pub user_activity_exponent: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_users: 100,
            n_items: 200,
            target_pairs: 2_000,
            latent_dim: 4,
            affinity_weight: 8.0,
            popularity_exponent: 0.8,
            user_activity_exponent: 0.8,
        }
    }
}

impl WorldConfig {
    /// A small world for unit tests and examples: 60 users × 120 items,
    /// 1 200 pairs, strong planted structure.
    pub fn tiny() -> Self {
        WorldConfig {
            n_users: 60,
            n_items: 120,
            target_pairs: 1_200,
            ..WorldConfig::default()
        }
    }
}

/// Generates a world according to `cfg`.
///
/// # Errors
/// Returns [`DataError::Empty`] for degenerate configurations (no users, no
/// items, or zero target pairs).
pub fn generate<R: Rng>(cfg: &WorldConfig, rng: &mut R) -> Result<Interactions, DataError> {
    if cfg.n_users == 0 || cfg.n_items == 0 || cfg.target_pairs == 0 {
        return Err(DataError::Empty);
    }
    let n = cfg.n_users as usize;
    let m = cfg.n_items as usize;
    let d = cfg.latent_dim.max(1);

    // Planted factors: N(0, 1/d) entries so that a_ui is O(1).
    let scale = 1.0 / (d as f64).sqrt();
    let user_factors: Vec<f64> = (0..n * d).map(|_| gaussian(rng) * scale).collect();
    let item_factors: Vec<f64> = (0..m * d).map(|_| gaussian(rng) * scale).collect();

    // Zipf popularity, assigned to items in random order so that item id
    // carries no information.
    let mut log_pop: Vec<f64> = (0..m)
        .map(|r| -cfg.popularity_exponent * ((r + 1) as f64).ln())
        .collect();
    log_pop.shuffle(rng);

    let degrees = user_degrees(cfg, rng);

    let mut builder = InteractionsBuilder::with_capacity(cfg.n_users, cfg.n_items, cfg.target_pairs);
    // Reusable buffer of (key, item) for the Gumbel top-k draw.
    let mut keys: Vec<(f64, u32)> = Vec::with_capacity(m);
    for (u, &n_u) in degrees.iter().enumerate() {
        if n_u == 0 {
            continue;
        }
        keys.clear();
        let uf = &user_factors[u * d..(u + 1) * d];
        for i in 0..m {
            let vf = &item_factors[i * d..(i + 1) * d];
            let affinity: f64 = uf.iter().zip(vf).map(|(a, b)| a * b).sum();
            let score = log_pop[i] + cfg.affinity_weight * affinity;
            // Gumbel-max trick: adding Gumbel noise and taking the top n_u
            // keys is an exact without-replacement sample from softmax(score).
            let gumbel = -(-(rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln()).ln();
            keys.push((score + gumbel, i as u32));
        }
        let k = n_u.min(m);
        // Partition so the k largest keys occupy the tail `keys[m - k..]`.
        if k < m {
            keys.select_nth_unstable_by(m - k - 1, |a, b| {
                a.0.partial_cmp(&b.0).expect("keys are finite")
            });
        }
        for &(_, item) in &keys[m - k..] {
            builder
                .push(UserId(u as u32), ItemId(item))
                .expect("generated ids are in range");
        }
    }
    builder.build()
}

/// Draws per-user degrees with a Zipf activity profile, summing exactly to
/// `cfg.target_pairs` (degrees are clamped to `[1, n_items]` when possible).
fn user_degrees<R: Rng>(cfg: &WorldConfig, rng: &mut R) -> Vec<usize> {
    let n = cfg.n_users as usize;
    let m = cfg.n_items as usize;
    let target = cfg.target_pairs.min(n * m);

    let mut weights: Vec<f64> = (0..n)
        .map(|r| ((r + 1) as f64).powf(-cfg.user_activity_exponent))
        .collect();
    weights.shuffle(rng);
    let total: f64 = weights.iter().sum();

    let mut degrees: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * target as f64).round().max(1.0) as usize)
        .map(|d| d.min(m))
        .collect();

    // Exact correction of rounding drift.
    let mut sum: usize = degrees.iter().sum();
    let mut idx = 0usize;
    while sum > target {
        let j = idx % n;
        if degrees[j] > 1 {
            degrees[j] -= 1;
            sum -= 1;
        }
        idx += 1;
        if idx > 64 * n {
            break; // target smaller than n: every user keeps one item.
        }
    }
    idx = 0;
    while sum < target {
        let j = rng.gen_range(0..n);
        if degrees[j] < m {
            degrees[j] += 1;
            sum += 1;
        }
        idx += 1;
        if idx > 64 * (target + n) {
            break; // matrix is full.
        }
    }
    degrees
}

/// Standard normal via Box–Muller (no extra dependency needed).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A named dataset of the paper together with the world that stands in for it.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Paper name (e.g. `"ML100K"`).
    pub name: &'static str,
    /// Generator configuration.
    pub config: WorldConfig,
    /// Seed used by the harness for this dataset.
    pub seed: u64,
    /// How this world relates to the paper's dataset (scaling etc.).
    pub scale_note: &'static str,
}

impl DatasetSpec {
    /// Generates the dataset with its canonical seed.
    pub fn generate(&self) -> Interactions {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(self.seed);
        generate(&self.config, &mut rng).expect("spec configurations are valid")
    }
}

fn spec(
    name: &'static str,
    n_users: u32,
    n_items: u32,
    target_pairs: usize,
    seed: u64,
    scale_note: &'static str,
) -> DatasetSpec {
    DatasetSpec {
        name,
        config: WorldConfig {
            n_users,
            n_items,
            target_pairs,
            ..WorldConfig::default()
        },
        seed,
        scale_note,
    }
}

/// ML100K stand-in: full scale (943 × 1 682, 55 375 pairs as in Table 1).
pub fn ml100k_like() -> DatasetSpec {
    spec("ML100K", 943, 1_682, 55_375, 0xA100, "full scale")
}

/// ML1M stand-in: full scale (6 040 × 3 952, 575 281 pairs).
pub fn ml1m_like() -> DatasetSpec {
    spec("ML1M", 6_040, 3_952, 575_281, 0xA101, "full scale")
}

/// UserTag stand-in: full scale (3 000 × 3 000, 246 436 pairs).
pub fn usertag_like() -> DatasetSpec {
    spec("UserTag", 3_000, 3_000, 246_436, 0xA102, "full scale")
}

/// ML20M stand-in, scaled ÷16 in users, items and pairs
/// (138 493 × 26 744, 1 159 834 pairs in the paper).
pub fn ml20m_like() -> DatasetSpec {
    spec("ML20M", 8_656, 1_672, 72_490, 0xA103, "÷16 users/items/pairs")
}

/// Flixter stand-in, scaled ÷16 (147 612 × 48 794, 637 024 pairs in the paper).
pub fn flixter_like() -> DatasetSpec {
    spec("Flixter", 9_226, 3_050, 39_814, 0xA104, "÷16 users/items/pairs")
}

/// Netflix stand-in, users ÷48 / items ÷6 / pairs ÷48
/// (480 189 × 17 770, 9 114 853 pairs in the paper).
pub fn netflix_like() -> DatasetSpec {
    spec(
        "Netflix",
        10_004,
        2_962,
        189_893,
        0xA105,
        "÷48 users & pairs, ÷6 items",
    )
}

/// The six worlds of Table 1, in the paper's order.
pub fn paper_datasets() -> Vec<DatasetSpec> {
    vec![
        ml100k_like(),
        ml1m_like(),
        usertag_like(),
        ml20m_like(),
        flixter_like(),
        netflix_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_world_matches_target_pairs() {
        let cfg = WorldConfig::tiny();
        let mut rng = SmallRng::seed_from_u64(11);
        let d = generate(&cfg, &mut rng).unwrap();
        assert_eq!(d.n_users(), cfg.n_users);
        assert_eq!(d.n_items(), cfg.n_items);
        assert_eq!(d.n_pairs(), cfg.target_pairs);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = WorldConfig::tiny();
        let a = generate(&cfg, &mut SmallRng::seed_from_u64(5)).unwrap();
        let b = generate(&cfg, &mut SmallRng::seed_from_u64(5)).unwrap();
        let c = generate(&cfg, &mut SmallRng::seed_from_u64(6)).unwrap();
        assert_eq!(a.pairs_vec(), b.pairs_vec());
        assert_ne!(a.pairs_vec(), c.pairs_vec());
    }

    #[test]
    fn no_duplicate_items_per_user() {
        let cfg = WorldConfig::tiny();
        let d = generate(&cfg, &mut SmallRng::seed_from_u64(3)).unwrap();
        for u in d.users() {
            let items = d.items_of(u);
            for w in items.windows(2) {
                assert!(w[0] < w[1], "duplicate or unsorted items for {u}");
            }
        }
    }

    #[test]
    fn popularity_is_long_tailed() {
        let cfg = WorldConfig {
            n_users: 200,
            n_items: 300,
            target_pairs: 6_000,
            affinity_weight: 0.0, // isolate the popularity prior
            ..WorldConfig::default()
        };
        let d = generate(&cfg, &mut SmallRng::seed_from_u64(1)).unwrap();
        let mut pop = d.item_popularity();
        pop.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = pop[..30].iter().sum();
        // With a Zipf(1) prior, the top 10% of items should absorb far more
        // than 10% of the mass.
        assert!(
            head as f64 > 0.25 * d.n_pairs() as f64,
            "head mass {head} of {}",
            d.n_pairs()
        );
    }

    #[test]
    fn every_user_gets_at_least_one_item_when_possible() {
        let cfg = WorldConfig {
            n_users: 50,
            n_items: 60,
            target_pairs: 400,
            ..WorldConfig::default()
        };
        let d = generate(&cfg, &mut SmallRng::seed_from_u64(9)).unwrap();
        for u in d.users() {
            assert!(d.degree_of_user(u) >= 1);
        }
    }

    #[test]
    fn degenerate_configs_error() {
        let mut rng = SmallRng::seed_from_u64(0);
        for cfg in [
            WorldConfig {
                n_users: 0,
                ..WorldConfig::tiny()
            },
            WorldConfig {
                n_items: 0,
                ..WorldConfig::tiny()
            },
            WorldConfig {
                target_pairs: 0,
                ..WorldConfig::tiny()
            },
        ] {
            assert!(generate(&cfg, &mut rng).is_err());
        }
    }

    #[test]
    fn target_larger_than_matrix_is_clamped() {
        let cfg = WorldConfig {
            n_users: 4,
            n_items: 5,
            target_pairs: 1_000, // > 20
            ..WorldConfig::default()
        };
        let d = generate(&cfg, &mut SmallRng::seed_from_u64(2)).unwrap();
        assert_eq!(d.n_pairs(), 20);
    }

    #[test]
    fn paper_specs_have_table1_shapes() {
        let specs = paper_datasets();
        assert_eq!(specs.len(), 6);
        let ml100k = &specs[0];
        assert_eq!(ml100k.config.n_users, 943);
        assert_eq!(ml100k.config.n_items, 1_682);
        assert_eq!(ml100k.config.target_pairs, 55_375);
        // Names are unique and seeds differ.
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn small_spec_generates() {
        // Generate the smallest paper dataset end to end (fast enough for CI).
        let spec = super::spec("mini", 120, 150, 2_000, 7, "test");
        let d = spec.generate();
        assert_eq!(d.n_pairs(), 2_000);
    }
}
