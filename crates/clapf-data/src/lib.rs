//! Implicit-feedback dataset substrate for the CLAPF reproduction.
//!
//! This crate owns everything about *data*:
//!
//! * [`Interactions`] — an immutable, doubly-indexed (user→items and
//!   item→users) sparse binary interaction matrix, the one-class feedback
//!   structure every model in the workspace trains on.
//! * [`InteractionsBuilder`] — the only way to construct [`Interactions`];
//!   deduplicates and validates pairs.
//! * [`split`] — the evaluation protocol from the paper (Sec 6.1): a random
//!   50/50 train/test split of the observed user–item pairs, a per-user
//!   validation holdout, and seeded repetition.
//! * [`synthetic`] — seeded generators that stand in for the six real-world
//!   datasets of Table 1 (ML100K, ML1M, UserTag, ML20M, Flixter, Netflix).
//!   Each generator plants a ground-truth low-rank preference structure plus
//!   a long-tail popularity prior, which is the structure the paper's
//!   ranking arguments rely on.
//! * [`loader`] — parsers for the real MovieLens file formats (`u.data`,
//!   `ratings.dat`, CSV) with the paper's "rating > 3 is positive"
//!   binarization, used whenever the real dumps are available on disk.
//! * [`export`] — CSV round-tripping and down-sampling utilities.
//! * [`stats`] — the Table 1 dataset-description statistics.
//! * [`stream`] — chunked, constant-memory synthetic worlds at the
//!   million-user scale, streamable straight to the binary CSR format.
//! * `storage` — that binary CSR file format:
//!   [`Interactions::write_csr`] serializes, [`Interactions::open_csr`]
//!   reopens it memory-mapped (on 64-bit little-endian Unix) so a
//!   10M-pair world costs file-backed pages instead of heap.
//!
//! All randomness is taken through explicit [`rand::Rng`] arguments (or
//! explicit seeds, in [`stream`]) so every experiment in the workspace is
//! reproducible from a seed.

// Unsafe is denied by default and allowed in exactly one module: the mmap
// FFI + typed-slice casts in `storage` (see its module docs for the
// soundness argument). Everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dataset;
mod error;
pub mod export;
mod ids;
pub mod loader;
pub mod split;
pub mod stats;
mod storage;
pub mod stream;
pub mod synthetic;

pub use builder::InteractionsBuilder;
pub use dataset::Interactions;
pub use error::DataError;
pub use ids::{ItemId, UserId};
pub use storage::{CSR_MAGIC, CSR_VERSION};
