//! Strongly-typed user and item identifiers.
//!
//! The models in this workspace index several parallel arrays (latent factor
//! tables, popularity counts, CSR offsets) by user and by item. Newtypes make
//! it a compile error to index a user table with an item id, which is a
//! classic silent-corruption bug in recommender code.
//!
//! Both ids are `#[repr(transparent)]` wrappers over `u32`: the file-backed
//! CSR storage reinterprets memory-mapped `u32` arrays as id slices, which
//! is only sound with a guaranteed identical layout.

use serde::{Deserialize, Serialize};

/// Identifier of a user, dense in `0..n_users`.
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
#[repr(transparent)]
pub struct UserId(pub u32);

/// Identifier of an item, dense in `0..n_items`.
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
#[repr(transparent)]
pub struct ItemId(pub u32);

impl UserId {
    /// The id as a `usize`, for indexing per-user arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The id as a `usize`, for indexing per-item arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        assert_eq!(UserId(7).index(), 7);
        assert_eq!(ItemId(u32::MAX).index(), u32::MAX as usize);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(9).to_string(), "i9");
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(0) < ItemId(1));
    }
}
