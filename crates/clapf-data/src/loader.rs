//! Parsers for real rating-file formats.
//!
//! When the actual MovieLens / Netflix dumps are present on disk, the
//! harness can run on them instead of the synthetic stand-ins. The paper's
//! pre-processing is applied here: a rating is kept as an observed positive
//! pair iff it is **strictly greater than 3** ("we take a pre-processing step
//! […] which only keeps the ratings larger than 3 as the observed positive
//! feedback"). Raw user/item ids are re-mapped to dense `0..n` ids.

use crate::{DataError, Interactions, InteractionsBuilder, ItemId, UserId};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// The rating threshold of the paper: keep `rating > 3.0`.
pub const PAPER_RATING_THRESHOLD: f64 = 3.0;

/// Field separator of a ratings file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Separator {
    /// Tab-separated (`u.data` from ML100K).
    Tab,
    /// `::`-separated (`ratings.dat` from ML1M / ML10M).
    DoubleColon,
    /// Comma-separated (`ratings.csv` from ML20M and most exports).
    Comma,
}

impl Separator {
    fn split<'a>(&self, line: &'a str) -> Vec<&'a str> {
        match self {
            Separator::Tab => line.split('\t').collect(),
            Separator::DoubleColon => line.split("::").collect(),
            Separator::Comma => line.split(',').collect(),
        }
    }
}

/// Maps between raw (file) ids and the dense ids used by [`Interactions`].
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct IdMap {
    user_to_dense: HashMap<String, u32>,
    item_to_dense: HashMap<String, u32>,
    dense_to_user: Vec<String>,
    dense_to_item: Vec<String>,
}

impl IdMap {
    fn intern_user(&mut self, raw: &str) -> u32 {
        if let Some(&d) = self.user_to_dense.get(raw) {
            return d;
        }
        let d = self.dense_to_user.len() as u32;
        self.user_to_dense.insert(raw.to_owned(), d);
        self.dense_to_user.push(raw.to_owned());
        d
    }

    fn intern_item(&mut self, raw: &str) -> u32 {
        if let Some(&d) = self.item_to_dense.get(raw) {
            return d;
        }
        let d = self.dense_to_item.len() as u32;
        self.item_to_dense.insert(raw.to_owned(), d);
        self.dense_to_item.push(raw.to_owned());
        d
    }

    /// The raw id of a dense user id.
    pub fn raw_user(&self, u: UserId) -> Option<&str> {
        self.dense_to_user.get(u.index()).map(String::as_str)
    }

    /// The raw id of a dense item id.
    pub fn raw_item(&self, i: ItemId) -> Option<&str> {
        self.dense_to_item.get(i.index()).map(String::as_str)
    }

    /// The dense id of a raw user id.
    pub fn dense_user(&self, raw: &str) -> Option<UserId> {
        self.user_to_dense.get(raw).copied().map(UserId)
    }

    /// The dense id of a raw item id.
    pub fn dense_item(&self, raw: &str) -> Option<ItemId> {
        self.item_to_dense.get(raw).copied().map(ItemId)
    }

    /// Number of distinct users seen.
    pub fn n_users(&self) -> u32 {
        self.dense_to_user.len() as u32
    }

    /// Number of distinct items seen.
    pub fn n_items(&self) -> u32 {
        self.dense_to_item.len() as u32
    }
}

/// Result of loading a ratings file: the binarized interactions and the id
/// mapping back to the raw identifiers.
#[derive(Clone, Debug)]
pub struct Loaded {
    /// Binarized one-class interactions.
    pub interactions: Interactions,
    /// Raw ↔ dense id mapping.
    pub ids: IdMap,
    /// Number of input rows skipped by the rating threshold.
    pub skipped_by_threshold: usize,
}

/// Loads a `user <sep> item <sep> rating [<sep> timestamp]` file from a
/// reader, keeping ratings strictly above `threshold`.
///
/// Lines that are empty or start with `#` are ignored; a header line whose
/// first field is not numeric is ignored as well (ML20M's `ratings.csv` has
/// one).
pub fn load_ratings_reader<R: BufRead>(
    reader: R,
    sep: Separator,
    threshold: f64,
) -> Result<Loaded, DataError> {
    let mut ids = IdMap::default();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut skipped = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields = sep.split(trimmed);
        if fields.len() < 3 {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("expected at least 3 fields, found {}", fields.len()),
            });
        }
        let rating: f64 = match fields[2].trim().parse() {
            Ok(r) => r,
            Err(_) => {
                if lineno == 0 {
                    continue; // header row
                }
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!("rating field {:?} is not a number", fields[2]),
                });
            }
        };
        if rating <= threshold {
            skipped += 1;
            continue;
        }
        let u = ids.intern_user(fields[0].trim());
        let i = ids.intern_item(fields[1].trim());
        pairs.push((u, i));
    }

    let mut builder = InteractionsBuilder::with_capacity(ids.n_users(), ids.n_items(), pairs.len());
    for (u, i) in pairs {
        builder.push(UserId(u), ItemId(i))?;
    }
    Ok(Loaded {
        interactions: builder.build()?,
        ids,
        skipped_by_threshold: skipped,
    })
}

/// Loads a ratings file from disk, inferring the separator from its name
/// (`.csv` → comma, `.dat` → `::`, everything else → tab).
pub fn load_ratings_path(path: &Path, threshold: f64) -> Result<Loaded, DataError> {
    let sep = match path.extension().and_then(|e| e.to_str()) {
        Some("csv") => Separator::Comma,
        Some("dat") => Separator::DoubleColon,
        _ => Separator::Tab,
    };
    let file = std::fs::File::open(path)?;
    load_ratings_reader(std::io::BufReader::new(file), sep, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn tab_format_binarizes_above_threshold() {
        let data = "1\t10\t5\t881250949\n1\t11\t3\t881250949\n2\t10\t4\t881250949\n";
        let loaded =
            load_ratings_reader(Cursor::new(data), Separator::Tab, PAPER_RATING_THRESHOLD)
                .unwrap();
        // rating 3 is dropped (strictly greater than 3 kept).
        assert_eq!(loaded.interactions.n_pairs(), 2);
        assert_eq!(loaded.skipped_by_threshold, 1);
        assert_eq!(loaded.ids.n_users(), 2);
        assert_eq!(loaded.ids.n_items(), 1); // item 11 was never kept
    }

    #[test]
    fn double_colon_format_parses() {
        let data = "1::1193::5::978300760\n1::661::3::978302109\n2::1193::4::978298413\n";
        let loaded =
            load_ratings_reader(Cursor::new(data), Separator::DoubleColon, 3.0).unwrap();
        assert_eq!(loaded.interactions.n_pairs(), 2);
        let u0 = loaded.ids.dense_user("1").unwrap();
        assert_eq!(loaded.ids.raw_user(u0), Some("1"));
    }

    #[test]
    fn csv_header_is_skipped() {
        let data = "userId,movieId,rating,timestamp\n1,296,5.0,1147880044\n1,306,3.5,1147868817\n";
        let loaded = load_ratings_reader(Cursor::new(data), Separator::Comma, 3.0).unwrap();
        assert_eq!(loaded.interactions.n_pairs(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let data = "# a comment\n\n1\t2\t4\n";
        let loaded = load_ratings_reader(Cursor::new(data), Separator::Tab, 3.0).unwrap();
        assert_eq!(loaded.interactions.n_pairs(), 1);
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = "1\t2\t4\nnot-a-line\n";
        let err = load_ratings_reader(Cursor::new(data), Separator::Tab, 3.0).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_rating_mid_file_is_an_error() {
        let data = "1\t2\t4\n1\t3\tfive\n";
        assert!(matches!(
            load_ratings_reader(Cursor::new(data), Separator::Tab, 3.0),
            Err(DataError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let data = "42\t900\t5\n42\t901\t5\n7\t900\t4\n";
        let loaded = load_ratings_reader(Cursor::new(data), Separator::Tab, 3.0).unwrap();
        assert_eq!(loaded.ids.dense_user("42"), Some(UserId(0)));
        assert_eq!(loaded.ids.dense_user("7"), Some(UserId(1)));
        assert_eq!(loaded.ids.dense_item("900"), Some(ItemId(0)));
        assert_eq!(loaded.ids.dense_item("901"), Some(ItemId(1)));
        assert_eq!(loaded.ids.dense_user("999"), None);
    }

    #[test]
    fn all_below_threshold_is_empty_error() {
        let data = "1\t2\t1\n1\t3\t2\n";
        assert!(matches!(
            load_ratings_reader(Cursor::new(data), Separator::Tab, 3.0),
            Err(DataError::Empty)
        ));
    }
}
