//! The core one-class interaction matrix.

use crate::storage::Buf;
use crate::{ItemId, UserId};

/// An immutable binary user–item interaction matrix in compressed sparse
/// form, indexed in *both* directions.
///
/// `Interactions` is the "implicit feedback" object of the paper: a set of
/// observed positive pairs `(u, i)` with everything else unobserved. Every
/// model in the workspace consumes this type; the split protocol produces
/// training, validation and test instances of it over the same id space.
///
/// Internally this is a CSR matrix (user → sorted item list) plus its
/// transpose (item → sorted user list). Per-user and per-item slices are
/// `O(1)` to obtain, membership checks are `O(log n)` binary searches.
///
/// The four index arrays are `Buf`s: heap-owned for matrices built in
/// memory, file-backed for matrices reopened with
/// [`open_csr`](Interactions::open_csr). Every accessor works identically
/// on both.
#[derive(Clone, Debug)]
pub struct Interactions {
    pub(crate) n_users: u32,
    pub(crate) n_items: u32,
    /// CSR offsets: items of user `u` live at `user_items[user_ptr[u]..user_ptr[u+1]]`.
    pub(crate) user_ptr: Buf<usize>,
    /// Concatenated, per-user-sorted item ids.
    pub(crate) user_items: Buf<ItemId>,
    /// CSC offsets: users of item `i` live at `item_users[item_ptr[i]..item_ptr[i+1]]`.
    pub(crate) item_ptr: Buf<usize>,
    /// Concatenated, per-item-sorted user ids.
    pub(crate) item_users: Buf<UserId>,
}

impl Interactions {
    /// Number of users in the id space (including users with no observed pairs).
    #[inline]
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Number of items in the id space (including items with no observed pairs).
    #[inline]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Total number of observed positive pairs (`|P|` in the paper).
    #[inline]
    pub fn n_pairs(&self) -> usize {
        self.user_items.len()
    }

    /// Fraction of the user×item matrix that is observed.
    pub fn density(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            return 0.0;
        }
        self.n_pairs() as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// The observed items of user `u` (`I_u^+` in the paper), sorted by id.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn items_of(&self, u: UserId) -> &[ItemId] {
        let ui = u.index();
        &self.user_items[self.user_ptr[ui]..self.user_ptr[ui + 1]]
    }

    /// The users that observed item `i`, sorted by id.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn users_of(&self, i: ItemId) -> &[UserId] {
        let ii = i.index();
        &self.item_users[self.item_ptr[ii]..self.item_ptr[ii + 1]]
    }

    /// Number of observed items for user `u` (`n_u^+` in the paper).
    #[inline]
    pub fn degree_of_user(&self, u: UserId) -> usize {
        self.items_of(u).len()
    }

    /// Number of users that observed item `i` (its popularity).
    #[inline]
    pub fn degree_of_item(&self, i: ItemId) -> usize {
        self.users_of(i).len()
    }

    /// Whether the pair `(u, i)` is observed. `O(log n_u^+)`.
    #[inline]
    pub fn contains(&self, u: UserId, i: ItemId) -> bool {
        self.items_of(u).binary_search(&i).is_ok()
    }

    /// Iterator over every user id in the id space.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.n_users).map(UserId)
    }

    /// Iterator over every item id in the id space.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.n_items).map(ItemId)
    }

    /// Iterator over users that have at least one observed pair.
    pub fn active_users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users().filter(|&u| self.degree_of_user(u) > 0)
    }

    /// Iterator over all observed `(user, item)` pairs in user-major order.
    pub fn pairs(&self) -> impl Iterator<Item = (UserId, ItemId)> + '_ {
        self.users()
            .flat_map(move |u| self.items_of(u).iter().map(move |&i| (u, i)))
    }

    /// Popularity (observation count) of every item, indexable by `ItemId::index`.
    pub fn item_popularity(&self) -> Vec<usize> {
        (0..self.n_items as usize)
            .map(|i| self.item_ptr[i + 1] - self.item_ptr[i])
            .collect()
    }

    /// The `idx`-th observed pair in user-major order, `O(log n_users)`.
    ///
    /// Lets samplers draw a uniform observed pair without materializing the
    /// pair list.
    ///
    /// # Panics
    /// Panics if `idx >= n_pairs()`.
    pub fn pair_at(&self, idx: usize) -> (UserId, ItemId) {
        assert!(idx < self.n_pairs(), "pair index out of range");
        // First user whose range ends beyond idx.
        let u = self.user_ptr.partition_point(|&p| p <= idx) - 1;
        (UserId(u as u32), self.user_items[idx])
    }

    /// Collects the observed pairs into a vector; handy for shuffling during SGD.
    pub fn pairs_vec(&self) -> Vec<(UserId, ItemId)> {
        let mut v = Vec::with_capacity(self.n_pairs());
        v.extend(self.pairs());
        v
    }

    /// Builds an `Interactions` over the same id space from a subset of pairs.
    ///
    /// Used by the split protocol; pairs must be in range (they come from an
    /// existing instance, so they are).
    pub(crate) fn from_pairs(n_users: u32, n_items: u32, pairs: &[(UserId, ItemId)]) -> Self {
        let nu = n_users as usize;
        let ni = n_items as usize;

        let mut user_ptr = vec![0usize; nu + 1];
        for &(u, _) in pairs {
            user_ptr[u.index() + 1] += 1;
        }
        for i in 0..nu {
            user_ptr[i + 1] += user_ptr[i];
        }
        let mut cursor = user_ptr.clone();
        let mut user_items = vec![ItemId(0); pairs.len()];
        for &(u, i) in pairs {
            user_items[cursor[u.index()]] = i;
            cursor[u.index()] += 1;
        }
        for u in 0..nu {
            user_items[user_ptr[u]..user_ptr[u + 1]].sort_unstable();
        }

        let mut item_ptr = vec![0usize; ni + 1];
        for &(_, i) in pairs {
            item_ptr[i.index() + 1] += 1;
        }
        for i in 0..ni {
            item_ptr[i + 1] += item_ptr[i];
        }
        let mut cursor = item_ptr.clone();
        let mut item_users = vec![UserId(0); pairs.len()];
        for &(u, i) in pairs {
            item_users[cursor[i.index()]] = u;
            cursor[i.index()] += 1;
        }
        for i in 0..ni {
            item_users[item_ptr[i]..item_ptr[i + 1]].sort_unstable();
        }

        Interactions {
            n_users,
            n_items,
            user_ptr: user_ptr.into(),
            user_items: user_items.into(),
            item_ptr: item_ptr.into(),
            item_users: item_users.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InteractionsBuilder;

    fn small() -> Interactions {
        let mut b = InteractionsBuilder::new(3, 4);
        for (u, i) in [(0, 0), (0, 2), (1, 2), (1, 3), (2, 1)] {
            b.push(UserId(u), ItemId(i)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_and_density() {
        let d = small();
        assert_eq!(d.n_users(), 3);
        assert_eq!(d.n_items(), 4);
        assert_eq!(d.n_pairs(), 5);
        assert!((d.density() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn items_of_is_sorted() {
        let d = small();
        assert_eq!(d.items_of(UserId(0)), &[ItemId(0), ItemId(2)]);
        assert_eq!(d.items_of(UserId(1)), &[ItemId(2), ItemId(3)]);
        assert_eq!(d.items_of(UserId(2)), &[ItemId(1)]);
    }

    #[test]
    fn users_of_is_transpose() {
        let d = small();
        assert_eq!(d.users_of(ItemId(2)), &[UserId(0), UserId(1)]);
        assert_eq!(d.users_of(ItemId(0)), &[UserId(0)]);
        assert!(d.users_of(ItemId(1)).contains(&UserId(2)));
    }

    #[test]
    fn contains_agrees_with_lists() {
        let d = small();
        assert!(d.contains(UserId(0), ItemId(2)));
        assert!(!d.contains(UserId(0), ItemId(3)));
        assert!(!d.contains(UserId(2), ItemId(0)));
    }

    #[test]
    fn pairs_iterates_everything_once() {
        let d = small();
        let pairs: Vec<_> = d.pairs().collect();
        assert_eq!(pairs.len(), 5);
        assert!(pairs.contains(&(UserId(2), ItemId(1))));
    }

    #[test]
    fn popularity_matches_transpose() {
        let d = small();
        assert_eq!(d.item_popularity(), vec![1, 1, 2, 1]);
    }

    #[test]
    fn degree_accessors() {
        let d = small();
        assert_eq!(d.degree_of_user(UserId(1)), 2);
        assert_eq!(d.degree_of_item(ItemId(2)), 2);
    }

    #[test]
    fn empty_user_has_empty_slice() {
        let mut b = InteractionsBuilder::new(2, 2);
        b.push(UserId(0), ItemId(0)).unwrap();
        let d = b.build().unwrap();
        assert!(d.items_of(UserId(1)).is_empty());
        assert_eq!(d.active_users().count(), 1);
    }

    #[test]
    fn pair_at_enumerates_all_pairs() {
        let d = small();
        let by_index: Vec<_> = (0..d.n_pairs()).map(|i| d.pair_at(i)).collect();
        let by_iter: Vec<_> = d.pairs().collect();
        assert_eq!(by_index, by_iter);
    }

    #[test]
    #[should_panic(expected = "pair index out of range")]
    fn pair_at_out_of_range_panics() {
        small().pair_at(99);
    }

    #[test]
    fn zero_density_on_degenerate_dims() {
        let d = Interactions::from_pairs(0, 0, &[]);
        assert_eq!(d.density(), 0.0);
    }
}
