//! Validated construction of [`Interactions`].

use crate::{DataError, Interactions, ItemId, UserId};

/// Accumulates `(user, item)` pairs and produces a deduplicated, doubly
/// indexed [`Interactions`].
///
/// ```
/// use clapf_data::{InteractionsBuilder, UserId, ItemId};
///
/// let mut b = InteractionsBuilder::new(2, 3);
/// b.push(UserId(0), ItemId(1)).unwrap();
/// b.push(UserId(0), ItemId(1)).unwrap(); // duplicates are fine
/// b.push(UserId(1), ItemId(2)).unwrap();
/// let data = b.build().unwrap();
/// assert_eq!(data.n_pairs(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct InteractionsBuilder {
    n_users: u32,
    n_items: u32,
    pairs: Vec<(UserId, ItemId)>,
}

impl InteractionsBuilder {
    /// Starts a builder over a fixed id space `0..n_users × 0..n_items`.
    pub fn new(n_users: u32, n_items: u32) -> Self {
        InteractionsBuilder {
            n_users,
            n_items,
            pairs: Vec::new(),
        }
    }

    /// Starts a builder with room for `capacity` pairs.
    pub fn with_capacity(n_users: u32, n_items: u32, capacity: usize) -> Self {
        InteractionsBuilder {
            n_users,
            n_items,
            pairs: Vec::with_capacity(capacity),
        }
    }

    /// Records an observed positive pair. Duplicates are collapsed at
    /// [`build`](Self::build) time.
    pub fn push(&mut self, u: UserId, i: ItemId) -> Result<(), DataError> {
        if u.0 >= self.n_users {
            return Err(DataError::UserOutOfRange {
                user: u.0,
                n_users: self.n_users,
            });
        }
        if i.0 >= self.n_items {
            return Err(DataError::ItemOutOfRange {
                item: i.0,
                n_items: self.n_items,
            });
        }
        self.pairs.push((u, i));
        Ok(())
    }

    /// Number of pairs recorded so far (before deduplication).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Finalizes into an [`Interactions`].
    ///
    /// Returns [`DataError::Empty`] if the id space is degenerate or no pairs
    /// were recorded — every consumer in the workspace assumes at least one
    /// observed pair.
    pub fn build(mut self) -> Result<Interactions, DataError> {
        if self.n_users == 0 || self.n_items == 0 || self.pairs.is_empty() {
            return Err(DataError::Empty);
        }
        self.pairs.sort_unstable();
        self.pairs.dedup();
        Ok(Interactions::from_pairs(
            self.n_users,
            self.n_items,
            &self.pairs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_user() {
        let mut b = InteractionsBuilder::new(2, 2);
        assert!(matches!(
            b.push(UserId(2), ItemId(0)),
            Err(DataError::UserOutOfRange { user: 2, n_users: 2 })
        ));
    }

    #[test]
    fn rejects_out_of_range_item() {
        let mut b = InteractionsBuilder::new(2, 2);
        assert!(matches!(
            b.push(UserId(0), ItemId(5)),
            Err(DataError::ItemOutOfRange { item: 5, n_items: 2 })
        ));
    }

    #[test]
    fn rejects_empty() {
        let b = InteractionsBuilder::new(2, 2);
        assert!(matches!(b.build(), Err(DataError::Empty)));
        assert!(matches!(
            InteractionsBuilder::new(0, 2).build(),
            Err(DataError::Empty)
        ));
    }

    #[test]
    fn dedup_collapses() {
        let mut b = InteractionsBuilder::new(1, 1);
        for _ in 0..10 {
            b.push(UserId(0), ItemId(0)).unwrap();
        }
        assert_eq!(b.len(), 10);
        let d = b.build().unwrap();
        assert_eq!(d.n_pairs(), 1);
    }

    #[test]
    fn capacity_constructor_works() {
        let mut b = InteractionsBuilder::with_capacity(1, 2, 2);
        assert!(b.is_empty());
        b.push(UserId(0), ItemId(1)).unwrap();
        assert!(!b.is_empty());
        assert_eq!(b.build().unwrap().n_pairs(), 1);
    }
}
