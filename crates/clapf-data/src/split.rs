//! The evaluation protocol of the paper (Sec 6.1).
//!
//! > "following the previous common training/test split strategy, we randomly
//! > split half of the observed user-item pairs as training data, and the
//! > rest as test data; we then randomly take one user-item pair for each
//! > user from the training data to construct a validation set. We repeat the
//! > above procedure for five times."

use crate::{DataError, Interactions, ItemId, UserId};
use rand::seq::SliceRandom;
use rand::Rng;

/// How observed pairs are divided between train and test.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Shuffle the global pair list and cut it at the requested fraction.
    /// This is the paper's protocol; some users may end up train-only or
    /// test-only (the metrics layer skips users without test items).
    GlobalPairs,
    /// Split each user's item list independently at the requested fraction
    /// (at least one item stays in train for users with ≥ 2 items).
    /// Guarantees every multi-item user is evaluable.
    PerUser,
}

/// A train/test division of an interaction set over the same id space.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training interactions.
    pub train: Interactions,
    /// Held-out test interactions (disjoint from `train`).
    pub test: Interactions,
}

/// Splits `data` into train/test with the given training fraction.
///
/// # Errors
/// Returns [`DataError::BadFraction`] unless `0 < train_fraction < 1`, and
/// [`DataError::Empty`] if either side of the split would be empty.
pub fn split<R: Rng>(
    data: &Interactions,
    strategy: SplitStrategy,
    train_fraction: f64,
    rng: &mut R,
) -> Result<Split, DataError> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(DataError::BadFraction(train_fraction));
    }
    let (train_pairs, test_pairs) = match strategy {
        SplitStrategy::GlobalPairs => {
            let mut pairs = data.pairs_vec();
            pairs.shuffle(rng);
            let cut = ((pairs.len() as f64) * train_fraction).round() as usize;
            let cut = cut.clamp(1, pairs.len().saturating_sub(1).max(1));
            let test = pairs.split_off(cut);
            (pairs, test)
        }
        SplitStrategy::PerUser => {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for u in data.users() {
                let mut items: Vec<ItemId> = data.items_of(u).to_vec();
                if items.is_empty() {
                    continue;
                }
                items.shuffle(rng);
                if items.len() == 1 {
                    // A single observation can't be split; keep it trainable.
                    train.push((u, items[0]));
                    continue;
                }
                let cut = (((items.len() as f64) * train_fraction).round() as usize)
                    .clamp(1, items.len() - 1);
                for (pos, i) in items.into_iter().enumerate() {
                    if pos < cut {
                        train.push((u, i));
                    } else {
                        test.push((u, i));
                    }
                }
            }
            (train, test)
        }
    };
    if train_pairs.is_empty() || test_pairs.is_empty() {
        return Err(DataError::Empty);
    }
    Ok(Split {
        train: Interactions::from_pairs(data.n_users(), data.n_items(), &train_pairs),
        test: Interactions::from_pairs(data.n_users(), data.n_items(), &test_pairs),
    })
}

/// Removes one random training pair per user (for users with ≥ 2 training
/// items) to form a validation set, as the paper does for hyper-parameter
/// selection on `NDCG@5`.
///
/// Returns `(reduced_train, validation)`.
pub fn holdout_validation<R: Rng>(
    train: &Interactions,
    rng: &mut R,
) -> (Interactions, Interactions) {
    let mut kept: Vec<(UserId, ItemId)> = Vec::with_capacity(train.n_pairs());
    let mut held: Vec<(UserId, ItemId)> = Vec::new();
    for u in train.users() {
        let items = train.items_of(u);
        match items.len() {
            0 => {}
            1 => kept.push((u, items[0])),
            n => {
                let victim = rng.gen_range(0..n);
                for (pos, &i) in items.iter().enumerate() {
                    if pos == victim {
                        held.push((u, i));
                    } else {
                        kept.push((u, i));
                    }
                }
            }
        }
    }
    let reduced = Interactions::from_pairs(train.n_users(), train.n_items(), &kept);
    let validation = Interactions::from_pairs(train.n_users(), train.n_items(), &held);
    (reduced, validation)
}

/// One repetition of the paper's protocol: a train/validation/test triple
/// plus the seed that produced it.
#[derive(Clone, Debug)]
pub struct Fold {
    /// Training interactions with the validation pairs removed.
    pub train: Interactions,
    /// One held-out pair per (multi-item) user, for model selection.
    pub validation: Interactions,
    /// Held-out test interactions.
    pub test: Interactions,
    /// Seed this fold was derived from.
    pub seed: u64,
}

/// The repeated-split protocol: `repeats` independent 50/50 splits, each with
/// a validation holdout, derived deterministically from `base_seed`.
#[derive(Copy, Clone, Debug)]
pub struct Protocol {
    /// Number of independent repetitions (the paper uses 5).
    pub repeats: usize,
    /// Fraction of pairs assigned to training (the paper uses 0.5).
    pub train_fraction: f64,
    /// Strategy for dividing pairs.
    pub strategy: SplitStrategy,
    /// Seed from which all per-fold seeds derive.
    pub base_seed: u64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            repeats: 5,
            train_fraction: 0.5,
            strategy: SplitStrategy::GlobalPairs,
            base_seed: 0x0C1A_9F00,
        }
    }
}

impl Protocol {
    /// Materializes every fold of the protocol.
    pub fn folds(&self, data: &Interactions) -> Result<Vec<Fold>, DataError> {
        use rand::SeedableRng;
        let mut out = Vec::with_capacity(self.repeats);
        for rep in 0..self.repeats {
            let seed = self
                .base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rep as u64);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let Split { train, test } = split(data, self.strategy, self.train_fraction, &mut rng)?;
            let (train, validation) = holdout_validation(&train, &mut rng);
            out.push(Fold {
                train,
                validation,
                test,
                seed,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InteractionsBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn grid(n_users: u32, n_items: u32, every: u32) -> Interactions {
        let mut b = InteractionsBuilder::new(n_users, n_items);
        for u in 0..n_users {
            for i in 0..n_items {
                if (u + i) % every == 0 {
                    b.push(UserId(u), ItemId(i)).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn global_split_is_a_partition() {
        let data = grid(20, 30, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = split(&data, SplitStrategy::GlobalPairs, 0.5, &mut rng).unwrap();
        assert_eq!(s.train.n_pairs() + s.test.n_pairs(), data.n_pairs());
        let train: HashSet<_> = s.train.pairs().collect();
        let test: HashSet<_> = s.test.pairs().collect();
        assert!(train.is_disjoint(&test));
        let all: HashSet<_> = data.pairs().collect();
        assert_eq!(train.union(&test).count(), all.len());
    }

    #[test]
    fn global_split_respects_fraction_roughly() {
        let data = grid(40, 40, 2);
        let mut rng = SmallRng::seed_from_u64(7);
        let s = split(&data, SplitStrategy::GlobalPairs, 0.5, &mut rng).unwrap();
        let frac = s.train.n_pairs() as f64 / data.n_pairs() as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn per_user_split_keeps_every_multi_item_user_trainable() {
        let data = grid(15, 20, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = split(&data, SplitStrategy::PerUser, 0.5, &mut rng).unwrap();
        for u in data.users() {
            if data.degree_of_user(u) >= 2 {
                assert!(s.train.degree_of_user(u) >= 1, "user {u} lost all train items");
                assert!(s.test.degree_of_user(u) >= 1, "user {u} lost all test items");
            }
        }
    }

    #[test]
    fn bad_fraction_is_rejected() {
        let data = grid(4, 4, 1);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(split(&data, SplitStrategy::GlobalPairs, 0.0, &mut rng).is_err());
        assert!(split(&data, SplitStrategy::GlobalPairs, 1.0, &mut rng).is_err());
        assert!(split(&data, SplitStrategy::GlobalPairs, -0.3, &mut rng).is_err());
    }

    #[test]
    fn validation_takes_at_most_one_pair_per_user() {
        let data = grid(12, 12, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let (reduced, val) = holdout_validation(&data, &mut rng);
        assert_eq!(reduced.n_pairs() + val.n_pairs(), data.n_pairs());
        for u in data.users() {
            assert!(val.degree_of_user(u) <= 1);
            if data.degree_of_user(u) >= 2 {
                assert_eq!(val.degree_of_user(u), 1);
                assert_eq!(reduced.degree_of_user(u), data.degree_of_user(u) - 1);
            }
        }
    }

    #[test]
    fn validation_leaves_single_item_users_alone() {
        let mut b = InteractionsBuilder::new(2, 3);
        b.push(UserId(0), ItemId(0)).unwrap();
        b.push(UserId(1), ItemId(1)).unwrap();
        b.push(UserId(1), ItemId(2)).unwrap();
        let data = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let (reduced, val) = holdout_validation(&data, &mut rng);
        assert_eq!(reduced.degree_of_user(UserId(0)), 1);
        assert_eq!(val.degree_of_user(UserId(0)), 0);
        assert_eq!(val.degree_of_user(UserId(1)), 1);
    }

    #[test]
    fn protocol_produces_distinct_reproducible_folds() {
        let data = grid(20, 20, 2);
        let protocol = Protocol::default();
        let folds_a = protocol.folds(&data).unwrap();
        let folds_b = protocol.folds(&data).unwrap();
        assert_eq!(folds_a.len(), 5);
        for (a, b) in folds_a.iter().zip(&folds_b) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.train.pairs_vec(), b.train.pairs_vec());
            assert_eq!(a.test.pairs_vec(), b.test.pairs_vec());
        }
        // Different repetitions shuffle differently.
        assert_ne!(folds_a[0].train.pairs_vec(), folds_a[1].train.pairs_vec());
    }

    #[test]
    fn fold_pieces_partition_the_data() {
        let data = grid(16, 16, 2);
        for fold in Protocol::default().folds(&data).unwrap() {
            let n = fold.train.n_pairs() + fold.validation.n_pairs() + fold.test.n_pairs();
            assert_eq!(n, data.n_pairs());
        }
    }
}
