//! Error type for dataset construction and loading.

use std::fmt;

/// Errors raised while building, splitting or loading datasets.
#[derive(Debug)]
pub enum DataError {
    /// A user id was >= the declared number of users.
    UserOutOfRange {
        /// Offending user id.
        user: u32,
        /// Declared number of users.
        n_users: u32,
    },
    /// An item id was >= the declared number of items.
    ItemOutOfRange {
        /// Offending item id.
        item: u32,
        /// Declared number of items.
        n_items: u32,
    },
    /// The dataset would be empty (no users, no items or no pairs).
    Empty,
    /// A file could not be read.
    Io(std::io::Error),
    /// A line in an input file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// A split fraction outside `(0, 1)` was requested.
    BadFraction(f64),
    /// A binary CSR file had a bad magic, version, size or structure.
    Format(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UserOutOfRange { user, n_users } => {
                write!(f, "user id {user} out of range (n_users = {n_users})")
            }
            DataError::ItemOutOfRange { item, n_items } => {
                write!(f, "item id {item} out of range (n_items = {n_items})")
            }
            DataError::Empty => write!(f, "dataset has no users, items or interactions"),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            DataError::BadFraction(x) => {
                write!(f, "split fraction {x} must be strictly between 0 and 1")
            }
            DataError::Format(msg) => write!(f, "bad CSR file: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = DataError::UserOutOfRange { user: 9, n_users: 5 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
