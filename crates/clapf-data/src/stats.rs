//! Dataset description statistics (the contents of Table 1).

use crate::Interactions;
use serde::Serialize;

/// Summary statistics of an interaction set or of a train/test split, in the
/// shape of the paper's Table 1.
#[derive(Clone, Debug, Serialize)]
pub struct DatasetStats {
    /// Number of users `n`.
    pub n_users: u32,
    /// Number of items `m`.
    pub n_items: u32,
    /// Number of observed pairs.
    pub n_pairs: usize,
    /// `n_pairs / (n · m)`.
    pub density: f64,
    /// Mean observed items per user.
    pub avg_user_degree: f64,
    /// Mean observations per item.
    pub avg_item_degree: f64,
    /// Gini coefficient of item popularity (0 = uniform, → 1 = one item
    /// absorbs everything); quantifies the long tail.
    pub popularity_gini: f64,
    /// Largest single item popularity.
    pub max_item_degree: usize,
    /// Number of users with zero observed items.
    pub cold_users: usize,
    /// Number of items never observed.
    pub cold_items: usize,
}

impl DatasetStats {
    /// Computes the statistics of `data`.
    pub fn of(data: &Interactions) -> Self {
        let pop = data.item_popularity();
        let n_users = data.n_users();
        let n_items = data.n_items();
        let n_pairs = data.n_pairs();
        let cold_users = data.users().filter(|&u| data.degree_of_user(u) == 0).count();
        let cold_items = pop.iter().filter(|&&p| p == 0).count();
        DatasetStats {
            n_users,
            n_items,
            n_pairs,
            density: data.density(),
            avg_user_degree: if n_users == 0 {
                0.0
            } else {
                n_pairs as f64 / n_users as f64
            },
            avg_item_degree: if n_items == 0 {
                0.0
            } else {
                n_pairs as f64 / n_items as f64
            },
            popularity_gini: gini(&pop),
            max_item_degree: pop.iter().copied().max().unwrap_or(0),
            cold_users,
            cold_items,
        }
    }
}

/// Gini coefficient of a non-negative integer distribution.
fn gini(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(rank, &x)| (rank as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InteractionsBuilder, ItemId, UserId};

    #[test]
    fn stats_of_small_dataset() {
        let mut b = InteractionsBuilder::new(3, 4);
        for (u, i) in [(0, 0), (0, 1), (1, 0), (2, 0)] {
            b.push(UserId(u), ItemId(i)).unwrap();
        }
        let s = DatasetStats::of(&b.build().unwrap());
        assert_eq!(s.n_pairs, 4);
        assert!((s.density - 4.0 / 12.0).abs() < 1e-12);
        assert!((s.avg_user_degree - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_item_degree, 3);
        assert_eq!(s.cold_items, 2);
        assert_eq!(s.cold_users, 0);
    }

    #[test]
    fn gini_of_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        let g = gini(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 100]);
        assert!(g > 0.85, "g = {g}");
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3, 4]);
        let b = gini(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert_eq!(gini(&[7]), 0.0);
    }
}
