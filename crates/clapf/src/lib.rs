//! # CLAPF — Collaborative List-and-Pairwise Filtering
//!
//! A complete Rust reproduction of *"Collaborative List-and-Pairwise
//! Filtering From Implicit Feedback"* (Yu, Liu, Ye, Cheng, Chen, Ma — TKDE
//! 2020 / ICDE 2023 extended abstract): the CLAPF-MAP and CLAPF-MRR models,
//! the DSS sampler, every baseline of the paper's evaluation, the metrics,
//! and the harness that regenerates each table and figure.
//!
//! This umbrella crate re-exports the whole workspace under one name:
//!
//! | Module | Contents |
//! |---|---|
//! | [`data`] | interaction matrices, synthetic worlds, loaders, splits |
//! | [`mf`] | matrix-factorization substrate |
//! | [`sampling`] | Uniform / DSS / ablation samplers |
//! | [`core`] | CLAPF itself + the [`Recommender`] trait |
//! | [`baselines`] | PopRank, RandomWalk, WMF, BPR, MPR, CLiMF |
//! | [`neural`] | NeuMF, NeuPR, DeepICF on a from-scratch NN substrate |
//! | [`metrics`] | Precision/Recall/F1/1-Call/NDCG@k, MAP, MRR, AUC |
//! | [`eval`] | Table 1/2 and Fig. 2/3/4 harnesses |
//! | [`telemetry`] | lock-free metrics registry, train observers, JSONL traces |
//!
//! ## Quickstart
//!
//! ```
//! use clapf::core::{Clapf, ClapfConfig, Recommender};
//! use clapf::data::synthetic::{generate, WorldConfig};
//! use clapf::sampling::{DssMode, DssSampler};
//! use clapf::data::UserId;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let interactions = generate(&WorldConfig::tiny(), &mut rng).unwrap();
//!
//! let trainer = Clapf::new(ClapfConfig { iterations: 5_000, ..ClapfConfig::map(0.4) });
//! let mut sampler = DssSampler::dss(DssMode::Map);
//! let (model, report) = trainer.fit(&interactions, &mut sampler, &mut rng);
//! assert!(!report.diverged);
//!
//! let top5 = model.recommend(UserId(0), 5, Some(&interactions));
//! assert_eq!(top5.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use clapf_baselines as baselines;
pub use clapf_core as core;
pub use clapf_data as data;
pub use clapf_eval as eval;
pub use clapf_metrics as metrics;
pub use clapf_mf as mf;
pub use clapf_neural as neural;
pub use clapf_sampling as sampling;
pub use clapf_telemetry as telemetry;

pub use clapf_core::{Clapf, ClapfConfig, ClapfMode, Recommender};
pub use clapf_data::{Interactions, InteractionsBuilder, ItemId, UserId};
pub use clapf_sampling::{DnsSampler, DssMode, DssSampler, TripleSampler, UniformSampler};
