//! Shape tests for the paper's headline claims, at reduced scale.
//!
//! These assert the *relative ordering* Table 2 and Figs. 3–4 report, not
//! absolute numbers; everything is seeded, so the assertions are
//! deterministic.

use clapf::baselines::{Bpr, BprConfig, Climf, ClimfConfig};
use clapf::core::{Clapf, ClapfConfig, ClapfMode};
use clapf::data::split::{Protocol, SplitStrategy};
use clapf::data::synthetic::{generate, WorldConfig};
use clapf::data::{Interactions, UserId};
use clapf::metrics::{evaluate_serial, BulkScorer, EvalConfig, EvalReport};
use clapf::{DssMode, DssSampler, Recommender, UniformSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn world(seed: u64) -> (Interactions, Interactions) {
    let data = generate(
        &WorldConfig {
            n_users: 150,
            n_items: 260,
            target_pairs: 5_200,
            ..WorldConfig::default()
        },
        &mut SmallRng::seed_from_u64(seed),
    )
    .unwrap();
    let fold = Protocol {
        repeats: 1,
        train_fraction: 0.5,
        strategy: SplitStrategy::GlobalPairs,
        base_seed: seed ^ 0xBEEF,
    }
    .folds(&data)
    .unwrap()
    .remove(0);
    (fold.train, fold.test)
}

fn eval(model: &dyn Recommender, train: &Interactions, test: &Interactions) -> EvalReport {
    struct A<'a>(&'a dyn Recommender);
    impl BulkScorer for A<'_> {
        fn scores_into(&self, u: UserId, out: &mut Vec<f32>) {
            self.0.scores_into(u, out)
        }
    }
    evaluate_serial(&A(model), train, test, &EvalConfig::at_5())
}

fn fit_clapf(
    train: &Interactions,
    mode: ClapfMode,
    lambda: f32,
    dss: bool,
    seed: u64,
    iterations: usize,
) -> clapf::core::ClapfModel {
    let base = match mode {
        ClapfMode::Map => ClapfConfig::map(lambda),
        ClapfMode::Mrr => ClapfConfig::mrr(lambda),
    };
    let trainer = Clapf::new(ClapfConfig {
        dim: 10,
        iterations,
        ..base
    });
    let mut rng = SmallRng::seed_from_u64(seed);
    if dss {
        let mut sampler = DssSampler::dss(match mode {
            ClapfMode::Map => DssMode::Map,
            ClapfMode::Mrr => DssMode::Mrr,
        });
        trainer.fit(train, &mut sampler, &mut rng).0
    } else {
        trainer.fit(train, &mut UniformSampler, &mut rng).0
    }
}

/// Table 2 shape: CLAPF-MAP ≥ BPR on the rank-biased metrics (CLAPF adds
/// the listwise pair on top of BPR's pairwise pair).
#[test]
fn clapf_at_least_matches_bpr_on_rank_metrics() {
    let (train, test) = world(21);
    let iters = 100 * train.n_pairs();
    let bpr = Bpr {
        config: BprConfig {
            dim: 10,
            iterations: iters,
            ..BprConfig::default()
        },
    }
    .fit(&train, &mut SmallRng::seed_from_u64(1));
    let bpr_report = eval(&bpr, &train, &test);

    let clapf = fit_clapf(&train, ClapfMode::Map, 0.4, false, 1, iters);
    let clapf_report = eval(&clapf, &train, &test);

    // Allow a whisker of noise but demand the ordering of the paper.
    assert!(
        clapf_report.map >= bpr_report.map * 0.98,
        "CLAPF-MAP MAP {} ≪ BPR {}",
        clapf_report.map,
        bpr_report.map
    );
    assert!(
        clapf_report.ndcg_at(5) >= bpr_report.ndcg_at(5) * 0.98,
        "CLAPF-MAP NDCG@5 {} ≪ BPR {}",
        clapf_report.ndcg_at(5),
        bpr_report.ndcg_at(5)
    );
}

/// Table 2 shape: CLiMF (listwise only, never sees unobserved items) is
/// inferior to the pairwise CLAPF on implicit data.
#[test]
fn climf_is_inferior_to_clapf_on_implicit_data() {
    let (train, test) = world(22);
    let climf = Climf {
        config: ClimfConfig {
            dim: 10,
            epochs: 25,
            ..ClimfConfig::default()
        },
    }
    .fit(&train, &mut SmallRng::seed_from_u64(2));
    let climf_report = eval(&climf, &train, &test);

    let clapf = fit_clapf(&train, ClapfMode::Map, 0.4, false, 2, 100 * train.n_pairs());
    let clapf_report = eval(&clapf, &train, &test);

    assert!(
        clapf_report.ndcg_at(5) > climf_report.ndcg_at(5),
        "CLAPF NDCG@5 {} should beat CLiMF {}",
        clapf_report.ndcg_at(5),
        climf_report.ndcg_at(5)
    );
    assert!(
        clapf_report.map > climf_report.map,
        "CLAPF MAP {} should beat CLiMF {}",
        clapf_report.map,
        climf_report.map
    );
}

/// Fig. 3 shape: a moderate λ is usable — the λ ∈ {0.2, 0.4} models are
/// competitive with the pure-pairwise λ = 0 endpoint on MAP, and the pure
/// listwise endpoint λ = 1 is clearly worse (it never touches unobserved
/// items).
#[test]
fn lambda_endpoints_behave() {
    let (train, test) = world(23);
    let iters = 100 * train.n_pairs();
    let at = |lambda: f32| {
        let model = fit_clapf(&train, ClapfMode::Map, lambda, false, 3, iters);
        eval(&model, &train, &test).map
    };
    let l0 = at(0.0);
    let l04 = at(0.4);
    let l1 = at(1.0);
    assert!(
        l04 >= l1 && l0 >= l1,
        "pure listwise λ=1 (MAP {l1}) should lose to λ=0 ({l0}) and λ=0.4 ({l04})"
    );
    assert!(
        l04 >= l0 * 0.95,
        "moderate λ should stay competitive: λ=0.4 {l04} vs λ=0 {l0}"
    );
}

/// Fig. 4 shape: at an equal step budget, DSS reaches a higher value of the
/// quantity CLAPF optimizes — MAP over the training positives — than
/// uniform sampling. This is the "effectively update the model parameters"
/// mechanism of Sec 5.1: once uniform negatives mostly fall below the
/// positives, their gradient `1 − σ(R)` vanishes, while DSS keeps finding
/// violating triples. (On these *synthetic* worlds the acceleration shows
/// on the training objective; whether it transfers to held-out MAP depends
/// on the data regime — see EXPERIMENTS.md for the discussion.)
#[test]
fn dss_converges_faster_than_uniform_on_the_objective() {
    let (train, _test) = world(24);
    let budget = 200 * train.n_pairs();
    let uniform = fit_clapf(&train, ClapfMode::Map, 0.4, false, 4, budget);
    let dss = fit_clapf(&train, ClapfMode::Map, 0.4, true, 4, budget);

    let train_map = |model: &clapf::core::ClapfModel| -> f64 {
        let mut scores = Vec::new();
        let mut total = 0.0;
        let mut n = 0usize;
        for u in train.users() {
            let rel = train.items_of(u);
            if rel.is_empty() {
                continue;
            }
            model.mf.scores_for_user(u, &mut scores);
            let ranked = clapf::metrics::rank_all(&scores, |_| true);
            total += clapf::metrics::average_precision(&ranked, rel.len(), |i| {
                rel.binary_search(&i).is_ok()
            });
            n += 1;
        }
        total / n as f64
    };
    let map_uniform = train_map(&uniform);
    let map_dss = train_map(&dss);
    assert!(
        map_dss > map_uniform,
        "DSS train-MAP {map_dss} should beat uniform {map_uniform} at {budget} steps"
    );
}

/// Sec 6.4.1 cross-check: CLAPF-MAP is the better MAP optimizer and
/// CLAPF-MRR the better MRR optimizer (relative comparison).
#[test]
fn modes_optimize_their_own_metric() {
    let (train, test) = world(25);
    let iters = 200 * train.n_pairs();
    let map_model = fit_clapf(&train, ClapfMode::Map, 0.4, false, 5, iters);
    let mrr_model = fit_clapf(&train, ClapfMode::Mrr, 0.2, false, 5, iters);
    let map_report = eval(&map_model, &train, &test);
    let mrr_report = eval(&mrr_model, &train, &test);
    // The diagonal dominates the off-diagonal in at least one direction —
    // the paper's "optimizing what they intend to optimize" check. Demand
    // the MAP-vs-MAP comparison; MRR is noisier at this scale.
    assert!(
        map_report.map >= mrr_report.map * 0.97,
        "CLAPF-MAP should not lose MAP to CLAPF-MRR by much: {} vs {}",
        map_report.map,
        mrr_report.map
    );
}
