//! Invariants that span crate boundaries.

use clapf::core::objective::{map_lower_bound, smoothed_ap};
use clapf::core::{Clapf, ClapfConfig};
use clapf::data::synthetic::{generate, WorldConfig};
use clapf::data::{Interactions, UserId};
use clapf::{DssMode, DssSampler, Recommender, TripleSampler, UniformSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn world(seed: u64) -> Interactions {
    generate(
        &WorldConfig {
            n_users: 80,
            n_items: 140,
            target_pairs: 2_000,
            ..WorldConfig::default()
        },
        &mut SmallRng::seed_from_u64(seed),
    )
    .unwrap()
}

/// The smoothed-MAP bound of Sec 4.1 holds on *trained model scores*, not
/// just synthetic vectors: ln(smoothed AP_u) ≥ bound for every user.
#[test]
fn map_bound_holds_on_trained_model() {
    let data = world(1);
    let mut rng = SmallRng::seed_from_u64(2);
    let trainer = Clapf::new(ClapfConfig {
        dim: 8,
        iterations: 20_000,
        ..ClapfConfig::map(0.4)
    });
    let (model, _) = trainer.fit(&data, &mut UniformSampler, &mut rng);
    for u in data.users() {
        let scores: Vec<f32> = data
            .items_of(u)
            .iter()
            .map(|&i| model.mf.score(u, i))
            .collect();
        if scores.is_empty() {
            continue;
        }
        let bound = map_lower_bound(&scores);
        let value = smoothed_ap(&scores).ln();
        assert!(
            bound <= value + 1e-6,
            "bound violated for {u}: {bound} > {value}"
        );
    }
}

/// Training CLAPF-MAP should *raise* the average smoothed AP of the
/// training users relative to the untrained model.
#[test]
fn training_raises_smoothed_ap() {
    let data = world(3);
    let make = |iterations: usize| {
        let mut rng = SmallRng::seed_from_u64(4);
        let trainer = Clapf::new(ClapfConfig {
            dim: 8,
            iterations,
            ..ClapfConfig::map(0.4)
        });
        trainer.fit(&data, &mut UniformSampler, &mut rng).0
    };
    let avg_ap = |model: &clapf::core::ClapfModel| -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for u in data.users() {
            let scores: Vec<f32> = data
                .items_of(u)
                .iter()
                .map(|&i| model.mf.score(u, i))
                .collect();
            if !scores.is_empty() {
                total += smoothed_ap(&scores);
                n += 1;
            }
        }
        total / n as f64
    };
    let before = avg_ap(&make(1));
    let after = avg_ap(&make(30_000));
    assert!(
        after > before,
        "smoothed AP did not improve: {before} → {after}"
    );
}

/// DSS triples drawn against a *trained* model still satisfy the class
/// membership contract (i, k observed; j unobserved) for every user.
#[test]
fn dss_membership_on_trained_model() {
    let data = world(5);
    let mut rng = SmallRng::seed_from_u64(6);
    let trainer = Clapf::new(ClapfConfig {
        dim: 8,
        iterations: 15_000,
        ..ClapfConfig::map(0.4)
    });
    let mut sampler = DssSampler::dss(DssMode::Map);
    let (model, _) = trainer.fit(&data, &mut sampler, &mut rng);
    sampler.refresh(&model.mf);
    for u in data.users().take(40) {
        let degree = data.degree_of_user(u);
        if degree == 0 || degree >= data.n_items() as usize {
            continue; // no triple exists for empty or saturated users
        }
        for _ in 0..20 {
            let t = sampler.sample(&data, &model.mf, u, &mut rng).unwrap();
            assert!(data.contains(u, t.i));
            assert!(data.contains(u, t.k));
            assert!(!data.contains(u, t.j));
        }
    }
}

/// λ = 0 with identical RNG streams must produce *identical* models under
/// both CLAPF modes (both reduce to BPR), across sampler types.
#[test]
fn lambda_zero_mode_equivalence() {
    let data = world(7);
    let fit = |mode_map: bool| {
        let mut rng = SmallRng::seed_from_u64(8);
        let base = if mode_map {
            ClapfConfig::map(0.0)
        } else {
            ClapfConfig::mrr(0.0)
        };
        let trainer = Clapf::new(ClapfConfig {
            dim: 6,
            iterations: 6_000,
            ..base
        });
        trainer.fit(&data, &mut UniformSampler, &mut rng).0
    };
    let a = fit(true);
    let b = fit(false);
    for u in (0..data.n_users()).step_by(11) {
        for i in (0..data.n_items()).step_by(13) {
            assert_eq!(
                a.mf.score(UserId(u), clapf::ItemId(i)),
                b.mf.score(UserId(u), clapf::ItemId(i)),
            );
        }
    }
}

/// `Recommender::recommend` agrees with the metrics crate's ranking.
#[test]
fn recommend_agrees_with_metrics_ranking() {
    let data = world(9);
    let mut rng = SmallRng::seed_from_u64(10);
    let trainer = Clapf::new(ClapfConfig {
        dim: 6,
        iterations: 5_000,
        ..ClapfConfig::mrr(0.3)
    });
    let (model, _) = trainer.fit(&data, &mut UniformSampler, &mut rng);
    for u in (0..data.n_users()).step_by(19) {
        let user = UserId(u);
        let mut scores = Vec::new();
        model.scores_into(user, &mut scores);
        let via_metrics =
            clapf::metrics::top_k_ranked(&scores, 8, |i| !data.contains(user, i)).items;
        let via_recommend = model.recommend(user, 8, Some(&data));
        assert_eq!(via_metrics, via_recommend, "mismatch for {user}");
    }
}
