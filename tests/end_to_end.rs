//! End-to-end pipeline tests spanning every crate: generate → split → train
//! → evaluate → recommend.

use clapf::core::{Clapf, ClapfConfig};
use clapf::data::split::{Protocol, SplitStrategy};
use clapf::data::synthetic::{generate, WorldConfig};
use clapf::data::{Interactions, UserId};
use clapf::metrics::{evaluate_serial, BulkScorer, EvalConfig, EvalReport};
use clapf::{DssMode, DssSampler, Recommender, UniformSampler};
use clapf_baselines::PopRank;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn world(seed: u64) -> Interactions {
    generate(
        &WorldConfig {
            n_users: 120,
            n_items: 200,
            target_pairs: 3_600,
            ..WorldConfig::default()
        },
        &mut SmallRng::seed_from_u64(seed),
    )
    .unwrap()
}

fn eval(model: &dyn Recommender, train: &Interactions, test: &Interactions) -> EvalReport {
    struct A<'a>(&'a dyn Recommender);
    impl BulkScorer for A<'_> {
        fn scores_into(&self, u: UserId, out: &mut Vec<f32>) {
            self.0.scores_into(u, out)
        }
    }
    evaluate_serial(&A(model), train, test, &EvalConfig::at_5())
}

#[test]
fn clapf_beats_popularity_on_planted_structure() {
    let data = world(1);
    let fold = &Protocol::default().folds(&data).unwrap()[0];

    let pop = PopRank.fit(&fold.train);
    let pop_report = eval(&pop, &fold.train, &fold.test);

    let mut rng = SmallRng::seed_from_u64(2);
    let trainer = Clapf::new(ClapfConfig {
        dim: 10,
        iterations: 100 * fold.train.n_pairs(),
        ..ClapfConfig::map(0.4)
    });
    let mut sampler = DssSampler::dss(DssMode::Map);
    let (model, fit) = trainer.fit(&fold.train, &mut sampler, &mut rng);
    assert!(!fit.diverged);
    let clapf_report = eval(&model, &fold.train, &fold.test);

    assert!(
        clapf_report.ndcg_at(5) > pop_report.ndcg_at(5),
        "CLAPF NDCG@5 {} should beat PopRank {}",
        clapf_report.ndcg_at(5),
        pop_report.ndcg_at(5)
    );
    assert!(
        clapf_report.map > pop_report.map,
        "CLAPF MAP {} should beat PopRank {}",
        clapf_report.map,
        pop_report.map
    );
    assert!(clapf_report.auc > 0.7, "AUC = {}", clapf_report.auc);
}

#[test]
fn recommendations_exclude_training_items_and_rank_by_score() {
    let data = world(3);
    let fold = &Protocol::default().folds(&data).unwrap()[0];
    let mut rng = SmallRng::seed_from_u64(4);
    let trainer = Clapf::new(ClapfConfig {
        dim: 8,
        iterations: 10_000,
        ..ClapfConfig::mrr(0.2)
    });
    let (model, _) = trainer.fit(&fold.train, &mut UniformSampler, &mut rng);

    for u in (0..data.n_users()).step_by(17) {
        let user = UserId(u);
        let recs = model.recommend(user, 10, Some(&fold.train));
        // No training item leaks into the list.
        for &i in &recs {
            assert!(!fold.train.contains(user, i), "{user} recommended seen {i}");
        }
        // The list is sorted by descending model score.
        for w in recs.windows(2) {
            assert!(
                model.score(user, w[0]) >= model.score(user, w[1]),
                "list not sorted for {user}"
            );
        }
    }
}

#[test]
fn model_round_trips_through_serde() {
    let data = world(5);
    let mut rng = SmallRng::seed_from_u64(6);
    let trainer = Clapf::new(ClapfConfig {
        dim: 6,
        iterations: 5_000,
        ..ClapfConfig::map(0.4)
    });
    let (model, _) = trainer.fit(&data, &mut UniformSampler, &mut rng);

    let json = serde_json::to_string(&model.mf).expect("serialize");
    let restored: clapf::mf::MfModel = serde_json::from_str(&json).expect("deserialize");
    for u in 0..5u32 {
        for i in 0..5u32 {
            assert_eq!(
                model.mf.score(UserId(u), clapf::ItemId(i)),
                restored.score(UserId(u), clapf::ItemId(i))
            );
        }
    }
}

#[test]
fn protocol_folds_are_usable_end_to_end() {
    let data = world(7);
    let folds = Protocol {
        repeats: 3,
        train_fraction: 0.5,
        strategy: SplitStrategy::GlobalPairs,
        base_seed: 11,
    }
    .folds(&data)
    .unwrap();
    assert_eq!(folds.len(), 3);
    let mut ndcgs = Vec::new();
    for fold in &folds {
        let mut rng = SmallRng::seed_from_u64(fold.seed);
        let trainer = Clapf::new(ClapfConfig {
            dim: 6,
            iterations: 8_000,
            ..ClapfConfig::map(0.4)
        });
        let (model, _) = trainer.fit(&fold.train, &mut UniformSampler, &mut rng);
        let report = eval(&model, &fold.train, &fold.test);
        assert!(report.n_users > 0);
        ndcgs.push(report.ndcg_at(5));
    }
    // Folds differ, so metrics differ (but all are meaningful).
    assert!(ndcgs.iter().all(|&x| x > 0.0));
    assert!(ndcgs.windows(2).any(|w| w[0] != w[1]));
}
