//! Offline vendored subset of the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`), [`SeedableRng`] and
//! [`rngs::SmallRng`] (a xoshiro256++ generator), plus
//! [`seq::SliceRandom::shuffle`]. Deterministic per seed, but **not**
//! bit-compatible with crates.io `rand 0.8` — see `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly "at random" from raw generator output,
/// backing [`Rng::gen`]. Floats are uniform in `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style widening multiply without the rejection step:
                // bias is < 2^-32 per draw for the span sizes used here, and
                // debiasing is irrelevant for this workspace's statistics.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, usize, i32, i64);

impl SampleRange<u64> for Range<u64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform bits; floats in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// Export the full generator state for checkpointing.
        ///
        /// Paired with [`SmallRng::from_state`]; the restored generator
        /// produces the exact same stream the original would have.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`SmallRng::state`].
        ///
        /// An all-zero state is a xoshiro fixed point; it is nudged the same
        /// way `from_seed` nudges it, so a restored generator is never stuck.
        /// (A state captured from a live generator is never all-zero.)
        #[inline]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (slot, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::Rng::gen_range(&mut &mut *rng, 0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[crate::Rng::gen_range(&mut &mut *rng, 0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn from_state_nudges_all_zero_state() {
        let mut stuck = SmallRng::from_state([0, 0, 0, 0]);
        let vals: Vec<u64> = (0..4).map(|_| stuck.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_is_in_range_and_covers() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5u32..7);
            assert!((5..7).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle left the slice sorted");
    }

    #[test]
    fn dyn_rngcore_is_usable() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let v = super::Rng::gen_range(&mut &mut *dyn_rng, 0usize..4);
        assert!(v < 4);
    }
}
