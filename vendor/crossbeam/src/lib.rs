//! Offline vendored subset of crossbeam: scoped threads only.
//!
//! The workspace uses `crossbeam::thread::scope` for fan-out/join with
//! borrowed data. Since Rust 1.63 the standard library provides
//! `std::thread::scope`, so this shim simply adapts crossbeam's API
//! surface (closure receives a `&Scope`, `scope` returns a `Result`,
//! handle `join()` returns `thread::Result`) onto std.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;

    /// A scope handle passed to the `scope` closure; spawn borrows from it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again,
        /// matching crossbeam's signature (callers typically ignore it
        /// with `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
                _marker: PhantomData,
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates through
    /// `std::thread::scope` when its handle is unjoined; joined handles
    /// report panics through `join()` exactly as crossbeam does. Either
    /// way the `Result` layer matches call sites that `.expect(..)` it.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawn_and_join_collect_results() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .iter()
                    .map(|&x| s.spawn(move |_| x * 10))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn joined_panic_is_reported_via_join() {
            let caught = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join().is_err()
            })
            .unwrap();
            assert!(caught);
        }
    }
}
