//! Offline vendored micro-benchmark harness with criterion's API shape.
//!
//! Provides `Criterion`, `benchmark_group`/`bench_function`/`sample_size`/
//! `finish`, `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark is timed with `std::time::Instant` over a few
//! calibrated batches and the median per-iteration time is printed —
//! no statistics, plots, or baselines. `cargo bench` output stays
//! human-readable; `cargo test` merely compiles bench targets.

use std::time::{Duration, Instant};

/// Times a single benchmark body.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    last_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly 20ms per batch, capped to keep total time bounded.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_millis(20) || n >= 1 << 20 {
                break;
            }
            n *= 2;
        }
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / n as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns = samples[samples.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the vendored harness uses a fixed
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { last_ns: f64::NAN };
        f(&mut b);
        println!("{}/{:<24} {}", self.name, id, format_ns(b.last_ns));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "no measurement".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:10.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:10.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:10.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Entry point mirroring criterion's `Criterion` configuration object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { last_ns: f64::NAN };
        f(&mut b);
        println!("{:<24} {}", id, format_ns(b.last_ns));
        self
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_measures_something() {
        let mut b = super::Bencher { last_ns: f64::NAN };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.last_ns.is_finite() && b.last_ns >= 0.0);
    }
}
