//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! Hand-rolled token parsing (no `syn`/`quote`): supports plain structs
//! with named fields, tuple structs (serialized transparently, as with
//! `#[serde(transparent)]`), and enums with unit or struct variants —
//! exactly the shapes this workspace derives on. Field attributes
//! understood: `#[serde(skip)]` (omit on serialize, `Default` on
//! deserialize), `#[serde(default)]` (`Default` when the key is absent)
//! and `#[serde(transparent)]` (implied for newtypes).
//! Generics are not supported and abort with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Scans one attribute body (the tokens inside `#[...]`) for serde markers.
fn serde_markers(tokens: &[TokenTree]) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(TokenTree::Ident(id)) = tokens.first() {
        if id.to_string() == "serde" {
            if let Some(TokenTree::Group(g)) = tokens.get(1) {
                for t in g.stream() {
                    if let TokenTree::Ident(m) = t {
                        out.push(m.to_string());
                    }
                }
            }
        }
    }
    out
}

/// Consumes leading attributes from `tokens[*pos..]`, returning all serde
/// markers found (e.g. `["skip"]`).
fn eat_attrs(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut markers = Vec::new();
    while *pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                markers.extend(serde_markers(&body));
                *pos += 2;
                continue;
            }
        }
        break;
    }
    markers
}

/// Skips an optional `pub` / `pub(crate)` prefix.
fn eat_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

/// Parses the fields of a brace-delimited named-field body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        let markers = eat_attrs(body, &mut pos);
        eat_visibility(body, &mut pos);
        let name = match body.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
        };
        pos += 1;
        match body.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a top-level `,`, tracking `<...>`.
        let mut angle = 0i32;
        while let Some(t) = body.get(pos) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field {
            name,
            skip: markers.iter().any(|m| m == "skip"),
            default: markers.iter().any(|m| m == "default"),
        });
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => n += 1,
            _ => {}
        }
    }
    n
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        eat_attrs(body, &mut pos);
        let name = match body.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
        };
        pos += 1;
        let fields = match body.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                Some(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple enum variant `{name}` is not supported")
            }
            _ => None,
        };
        if matches!(body.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    eat_attrs(&tokens, &mut pos);
    eat_visibility(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
    let kind = match (keyword.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Kind::Named(parse_named_fields(&body))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Kind::Tuple(count_tuple_fields(&body))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Kind::Tuple(0),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Kind::Enum(parse_variants(&body))
        }
        (kw, other) => panic!("serde_derive: unsupported shape: {kw} {name} {other:?}"),
    };
    Input { name, kind }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            let mut s = String::from(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(fields)");
            s
        }
        Kind::Tuple(0) => format!("::serde::Value::Str(::std::string::String::from(\"{name}\"))"),
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(inner))])\n\
                             }}\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!
        (
        "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// One `name: <expr>,` initializer for a deserialized struct field:
/// skipped fields always default, `#[serde(default)]` fields default when
/// the key is absent, everything else is required.
fn field_init(f: &Field) -> String {
    if f.skip {
        format!("{}: ::core::default::Default::default(),\n", f.name)
    } else if f.default {
        format!(
            "{0}: ::serde::field_or_default(fields, \"{0}\")?,\n",
            f.name
        )
    } else {
        format!("{0}: ::serde::field(fields, \"{0}\")?,\n", f.name)
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_init(f));
            }
            format!(
                "let fields = ::serde::expect_map(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Kind::Tuple(n) => panic!(
            "serde_derive: cannot derive Deserialize for {n}-field tuple struct {name}"
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            for v in variants.iter().filter(|v| v.fields.is_none()) {
                unit_arms.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                    v = v.name
                ));
            }
            let mut struct_arms = String::new();
            for v in variants.iter() {
                if let Some(fields) = &v.fields {
                    let mut inits = String::new();
                    for f in fields {
                        inits.push_str(&field_init(f));
                    }
                    struct_arms.push_str(&format!(
                        "\"{v}\" => {{\n\
                         let fields = ::serde::expect_map(inner, \"{name}::{v}\")?;\n\
                         ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n\
                         }}\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {struct_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"expected variant of {name}, got {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
