//! Offline vendored JSON serialization over the vendored [`serde`] crate's
//! owned [`Value`] data model. Supports exactly what this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encode/decode error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn indent(out: &mut String, width: usize, level: usize) {
    out.push('\n');
    for _ in 0..width * level {
        out.push(' ');
    }
}

fn write_value(v: &Value, out: &mut String, pretty: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` prints the shortest string that round-trips to the
                // same f64. Integral floats get an explicit `.0` so they
                // re-parse as floats, matching serde_json's output.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(w) = pretty {
                    indent(out, w, level + 1);
                }
                write_value(item, out, pretty, level + 1);
            }
            if let Some(w) = pretty {
                indent(out, w, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (idx, (k, item)) in entries.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(w) = pretty {
                    indent(out, w, level + 1);
                }
                write_string(k, out);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(item, out, pretty, level + 1);
            }
            if let Some(w) = pretty {
                indent(out, w, level);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".to_string())),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or ']' at byte {}, found {:?}",
                                self.pos,
                                other.map(|c| c as char)
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or '}}' at byte {}, found {:?}",
                                self.pos,
                                other.map(|c| c as char)
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".to_string()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_literal("\\u") {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| Error("truncated surrogate".to_string()))?;
                                    self.pos += 4;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| Error("bad surrogate".to_string()))?,
                                        16,
                                    )
                                    .map_err(|_| Error("bad surrogate".to_string()))?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<f64> = vec![1.5, -2.0, 0.0];
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(v, back);

        let m: BTreeMap<String, u32> =
            [("a".to_string(), 1u32), ("b".to_string(), 2)].into_iter().collect();
        let s = to_string_pretty(&m).unwrap();
        let back: BTreeMap<String, u32> = from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn parses_escapes_and_nested() {
        let v: Vec<String> = from_str(r#"["a\nb", "A", "😀"]"#).unwrap();
        assert_eq!(v, vec!["a\nb".to_string(), "A".to_string(), "😀".to_string()]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 x").is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        let x = std::f64::consts::PI;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn negative_ints_parse() {
        let x: i64 = from_str("-42").unwrap();
        assert_eq!(x, -42);
    }
}
