//! Offline vendored subset of `serde`.
//!
//! Instead of the real crate's visitor architecture, this subset uses a
//! simplified **owned-value data model**: [`Serialize`] converts a value to
//! a JSON-like [`Value`] tree and [`Deserialize`] reconstructs it from one.
//! The companion vendored `serde_json` (de)serializes the same tree to
//! text. This is exactly enough for the JSON persistence and report
//! emission done in this workspace; it is not a general serde replacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The owned data-model tree both traits speak.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (also carries unsigned values `<= i64::MAX`).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as a finite `f64`, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }
}

/// Error produced by [`Deserialize`] implementations.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the data-model tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the data-model tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`], or explains why it cannot.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// Extracts the field map of a struct value, with a type name for errors.
pub fn expect_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Map(fields) => Ok(fields),
        other => Err(Error::msg(format!("expected a map for {ty}, got {other:?}"))),
    }
}

/// Looks up and deserializes one struct field; absent fields deserialize
/// from `Null` so `Option` fields default to `None` like real serde.
pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::msg(format!("missing field `{name}`"))),
    }
}

/// Like [`field`], but an absent key yields `T::default()` — the behaviour
/// of real serde's `#[serde(default)]` field attribute.
pub fn field_or_default<T: Deserialize + Default>(
    fields: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Implementations for std types used across the workspace.
// ---------------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

/// Map keys serializable as JSON object keys (strings).
pub trait MapKey: Ord {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, Error>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::msg(format!("invalid {} key {s:?}", stringify!($t))))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort by rendered key so output is deterministic despite
        // HashMap's randomized iteration order.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn f32_round_trip_is_exact() {
        for x in [0.05f32, -3.75, f32::MIN_POSITIVE, 1e30] {
            assert_eq!(f32::from_value(&x.to_value()).unwrap(), x);
        }
    }

    #[test]
    fn btreemap_uses_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(5usize, 1.25f64);
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Map(vec![("5".to_string(), Value::Float(1.25))])
        );
        let back: BTreeMap<usize, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_reports_name() {
        let fields: Vec<(String, Value)> = vec![];
        let err = field::<u32>(&fields, "dim").unwrap_err();
        assert!(err.to_string().contains("dim"));
    }
}
