//! Offline vendored subset of proptest: random-sampling property tests.
//!
//! Differences from crates.io proptest, acceptable for this workspace:
//! - **No shrinking.** A failing case reports its inputs (via `Debug`
//!   where the assertion macros format them) and the case index, but is
//!   not minimized.
//! - `.proptest-regressions` files are ignored.
//! - Case count comes from `PROPTEST_CASES` (default 64).
//!
//! Supported surface (exactly what the workspace tests use): numeric
//! `Range` strategies, tuples, `collection::{vec, hash_set}`,
//! `prop_flat_map`, `prop_filter_map`, the `proptest!` macro, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros with
//! [`TestCaseError`].

use rand::rngs::SmallRng;

/// The RNG handed to strategies. Deterministic per (test, case index).
pub type TestRng = SmallRng;

/// Why a test case did not pass: a rejection (filtered input, retried
/// without counting) or a genuine failure (panics the test).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reject: bool,
    msg: String,
}

impl TestCaseError {
    /// An input that should be discarded, not counted as pass or fail.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError {
            reject: true,
            msg: msg.into(),
        }
    }

    /// A genuine property violation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError {
            reject: false,
            msg: msg.into(),
        }
    }

    /// True when this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        self.reject
    }

    /// Human-readable message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.reject {
            write!(f, "rejected: {}", self.msg)
        } else {
            write!(f, "failed: {}", self.msg)
        }
    }
}

/// A generator of random values. Unlike real proptest there is no value
/// tree: `sample` draws a concrete value directly.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps each sampled value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Samples a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying a bounded
    /// number of times before panicking with `reason`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

const FILTER_RETRIES: usize = 2000;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected {FILTER_RETRIES} samples in a row",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_RETRIES} samples in a row",
            self.reason
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Target size for a generated collection: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.min + 1 == self.max {
                self.min
            } else {
                rand::Rng::gen_range(rng, self.min..self.max)
            }
        }
    }

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Creates a strategy for vectors of `element` with the given size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<T>`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = HashSet::new();
            // The element value space may hold fewer than `target` distinct
            // values (e.g. `hash_set(0..3u32, 0..50)`), so bound the insert
            // attempts and accept whatever accumulated.
            for _ in 0..target.saturating_mul(16).max(32) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// Creates a strategy for hash sets of `element` with the given target
    /// size (best effort when the value space is small).
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Builds the deterministic per-case RNG (used by the `proptest!` macro
/// so caller crates need no direct `rand` dependency).
pub fn rng_for(seed: u64) -> TestRng {
    rand::SeedableRng::seed_from_u64(seed)
}

/// Number of cases per property, from `PROPTEST_CASES` (default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Maximum rejected samples per property before giving up.
pub fn max_rejects() -> usize {
    cases() * 32
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        cases, max_rejects, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs [`cases`] times with a deterministic per-case RNG.
/// The body executes in a closure returning `Result<(), TestCaseError>`,
/// so `prop_assert!` family macros and `?` work inside.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let n_cases = $crate::cases();
                let mut rejects = 0usize;
                let mut case = 0usize;
                let mut attempt = 0u64;
                while case < n_cases {
                    // Deterministic: seed depends only on the test name and
                    // the attempt counter.
                    let mut seed = 0xcafe_f00d_d15e_a5e5u64 ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    for b in stringify!($name).bytes() {
                        seed = seed.wrapping_mul(0x100_0000_01b3) ^ b as u64;
                    }
                    let mut rng: $crate::TestRng = $crate::rng_for(seed);
                    attempt += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err(e) if e.is_reject() => {
                            rejects += 1;
                            if rejects > $crate::max_rejects() {
                                panic!(
                                    "{}: too many rejected cases ({rejects}); last: {}",
                                    stringify!($name),
                                    e.message()
                                );
                            }
                        }
                        Err(e) => panic!(
                            "{} failed at case {case} (attempt {attempt}): {}",
                            stringify!($name),
                            e.message()
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a),
                stringify!($b),
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case (it is retried with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_and_collections_compose(
            v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0u32..100, n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn hash_set_tolerates_small_value_space(
            s in crate::collection::hash_set(0u32..3, 0usize..50),
        ) {
            prop_assert!(s.len() <= 3);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
